//! Loss helpers and masked action-selection math shared by the RL
//! agents (paper Eqs. 6–8 and 13–15).

/// Numerically stable softmax over the entries of `logits` whose mask
/// bit is set; masked entries get probability 0.
///
/// Returns a uniform distribution over the masked-in entries when all
/// valid logits underflow.
///
/// # Panics
///
/// Panics when no mask bit is set (no legal action exists).
pub fn masked_softmax(logits: &[f32], mask: &[bool]) -> Vec<f32> {
    assert_eq!(logits.len(), mask.len());
    assert!(mask.iter().any(|&m| m), "masked_softmax needs at least one legal entry");
    let max = logits
        .iter()
        .zip(mask)
        .filter(|(_, &m)| m)
        .map(|(&l, _)| l)
        .fold(f32::NEG_INFINITY, f32::max);
    let mut exps: Vec<f32> =
        logits.iter().zip(mask).map(|(&l, &m)| if m { (l - max).exp() } else { 0.0 }).collect();
    let sum: f32 = exps.iter().sum();
    if sum > 0.0 {
        for e in &mut exps {
            *e /= sum;
        }
    } else {
        let k = mask.iter().filter(|&&m| m).count() as f32;
        for (e, &m) in exps.iter_mut().zip(mask) {
            *e = if m { 1.0 / k } else { 0.0 };
        }
    }
    exps
}

/// Index of the best *legal* entry (paper Eq. 8: argmax over the
/// masked Q-vector). Returns `None` when the mask is empty.
pub fn masked_argmax(values: &[f32], mask: &[bool]) -> Option<usize> {
    values
        .iter()
        .zip(mask)
        .enumerate()
        .filter(|(_, (_, &m))| m)
        .max_by(|a, b| a.1 .0.partial_cmp(b.1 .0).expect("finite values"))
        .map(|(i, _)| i)
}

/// Entropy of a probability vector (0 log 0 := 0).
pub fn entropy(probs: &[f32]) -> f32 {
    -probs.iter().filter(|&&p| p > 0.0).map(|&p| p * p.ln()).sum::<f32>()
}

/// Mean squared error and its gradient with respect to `pred`.
pub fn mse(pred: &[f32], target: &[f32]) -> (f32, Vec<f32>) {
    assert_eq!(pred.len(), target.len());
    let n = pred.len() as f32;
    let mut grad = Vec::with_capacity(pred.len());
    let mut loss = 0.0;
    for (&p, &t) in pred.iter().zip(target) {
        let d = p - t;
        loss += d * d;
        grad.push(2.0 * d / n);
    }
    (loss / n, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_masks_out_entries() {
        let p = masked_softmax(&[1.0, 100.0, 1.0], &[true, false, true]);
        assert_eq!(p[1], 0.0);
        assert!((p[0] - 0.5).abs() < 1e-6);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let p = masked_softmax(&[1e20f32.ln(), 0.0], &[true, true]);
        assert!(p[0] > 0.99 && p.iter().all(|v| v.is_finite()));
    }

    #[test]
    #[should_panic(expected = "at least one legal entry")]
    fn softmax_rejects_empty_mask() {
        masked_softmax(&[1.0], &[false]);
    }

    #[test]
    fn argmax_respects_mask() {
        assert_eq!(masked_argmax(&[5.0, 9.0, 7.0], &[true, false, true]), Some(2));
        assert_eq!(masked_argmax(&[1.0], &[false]), None);
    }

    #[test]
    fn entropy_of_uniform_is_log_n() {
        let e = entropy(&[0.25; 4]);
        assert!((e - 4.0f32.ln()).abs() < 1e-6);
        assert_eq!(entropy(&[1.0, 0.0]), 0.0);
    }

    #[test]
    fn softmax_falls_back_to_uniform_on_underflow() {
        // All valid logits so negative they underflow to zero mass.
        let p = masked_softmax(&[-1e10, -1e10, 0.0], &[true, true, false]);
        assert!((p[0] - 0.5).abs() < 1e-6 && (p[1] - 0.5).abs() < 1e-6);
        assert_eq!(p[2], 0.0);
    }

    #[test]
    fn mse_gradient_points_at_target() {
        let (l, g) = mse(&[1.0, 2.0], &[0.0, 2.0]);
        assert!((l - 0.5).abs() < 1e-6);
        assert_eq!(g, vec![1.0, 0.0]);
    }
}
