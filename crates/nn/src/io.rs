//! Flat binary persistence for network parameters.
//!
//! Parameters are serialized in visitation order (deterministic for a
//! fixed architecture) as little-endian `f32`, with per-tensor length
//! headers so shape drift is detected at load time. This lets long
//! RL-MUL trainings checkpoint the agent and lets optimized agents be
//! reused across sessions.

use crate::layer::Layer;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 8] = b"RLMULNN1";

/// Serializes every parameter of `net` to `w`.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn save_params<W: Write>(net: &mut dyn Layer, mut w: W) -> io::Result<()> {
    let mut blobs: Vec<Vec<f32>> = Vec::new();
    net.visit_params(&mut |p| blobs.push(p.value.data().to_vec()));
    w.write_all(MAGIC)?;
    w.write_all(&(blobs.len() as u64).to_le_bytes())?;
    for blob in &blobs {
        w.write_all(&(blob.len() as u64).to_le_bytes())?;
        for v in blob {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Restores parameters saved by [`save_params`] into an identically
/// structured network.
///
/// # Errors
///
/// Returns [`io::ErrorKind::InvalidData`] on a bad magic, a parameter
/// count mismatch or a shape mismatch, and propagates I/O errors.
pub fn load_params<R: Read>(net: &mut dyn Layer, mut r: R) -> io::Result<()> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "not an rlmul-nn checkpoint"));
    }
    let mut count_buf = [0u8; 8];
    r.read_exact(&mut count_buf)?;
    let count = u64::from_le_bytes(count_buf) as usize;
    let mut blobs: Vec<Vec<f32>> = Vec::with_capacity(count);
    for _ in 0..count {
        r.read_exact(&mut count_buf)?;
        let len = u64::from_le_bytes(count_buf) as usize;
        let mut blob = vec![0f32; len];
        let mut quad = [0u8; 4];
        for v in &mut blob {
            r.read_exact(&mut quad)?;
            *v = f32::from_le_bytes(quad);
        }
        blobs.push(blob);
    }
    let mut idx = 0usize;
    let mut err: Option<io::Error> = None;
    net.visit_params(&mut |p| {
        if err.is_some() {
            return;
        }
        match blobs.get(idx) {
            Some(blob) if blob.len() == p.value.len() => {
                p.value.data_mut().copy_from_slice(blob);
            }
            Some(blob) => {
                err = Some(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "parameter {idx}: expected {} values, found {}",
                        p.value.len(),
                        blob.len()
                    ),
                ));
            }
            None => {
                err = Some(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("checkpoint has only {count} parameters"),
                ));
            }
        }
        idx += 1;
    });
    if let Some(e) = err {
        return Err(e);
    }
    if idx != count {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("checkpoint has {count} parameters, network has {idx}"),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::Linear;
    use crate::resnet::{build_trunk, TrunkConfig};
    use crate::tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn save_load_round_trip_preserves_outputs() {
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = TrunkConfig { in_channels: 2, channels: vec![4, 8], blocks_per_stage: 1 };
        let mut a = build_trunk(&cfg, &mut rng);
        let mut b = build_trunk(&cfg, &mut rng); // different init
        let x = Tensor::kaiming(&[1, 2, 8, 8], 8, &mut rng);
        let ya = a.forward(&x, false);
        let mut buf = Vec::new();
        save_params(&mut a, &mut buf).expect("saves");
        load_params(&mut b, buf.as_slice()).expect("loads");
        let yb = b.forward(&x, false);
        assert_eq!(ya.data(), yb.data());
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut small = Linear::new(2, 2, &mut rng);
        let mut big = Linear::new(4, 4, &mut rng);
        let mut buf = Vec::new();
        save_params(&mut small, &mut buf).expect("saves");
        assert!(load_params(&mut big, buf.as_slice()).is_err());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut net = Linear::new(2, 2, &mut rng);
        assert!(load_params(&mut net, &b"NOTMAGIC"[..]).is_err());
    }
}
