//! Numerical gradient checking shared by the layer test suites.

#![cfg(test)]

use crate::layer::{Layer, Param};
use crate::tensor::Tensor;

/// Deterministic pseudo-random projection weights so the scalar loss
/// `L = Σ w_i · y_i` exercises every output asymmetrically.
fn projection(len: usize) -> Vec<f32> {
    let mut s = 0x243f6a8885a308d3u64;
    (0..len)
        .map(|_| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 40) as f32 / (1u64 << 24) as f32) - 0.5
        })
        .collect()
}

fn loss(layer: &mut dyn Layer, x: &Tensor) -> f32 {
    let y = layer.forward(x, true);
    let w = projection(y.len());
    y.data().iter().zip(&w).map(|(a, b)| a * b).sum()
}

/// Checks analytic input and parameter gradients against central
/// finite differences. `eps` is the perturbation, `tol` the allowed
/// absolute-plus-relative deviation.
///
/// Coordinates whose two one-sided differences disagree strongly are
/// skipped: there a perturbation crosses a ReLU kink and no finite
/// difference is meaningful. At least half the sampled coordinates
/// must be checkable.
///
/// # Panics
///
/// Panics (failing the test) when any sampled coordinate disagrees.
pub fn grad_check(layer: &mut (dyn Layer + '_), x: &Tensor, eps: f32, tol: f32) {
    // Analytic pass.
    layer.visit_params(&mut |p: &mut Param| p.zero_grad());
    let y = layer.forward(x, true);
    let w = projection(y.len());
    let grad_out = Tensor::from_vec(y.shape(), w);
    let dx = layer.backward(&grad_out);
    let l0 = loss(layer, x);

    let mut checked = 0usize;
    let mut skipped = 0usize;
    let mut agree = |analytic: f32, lp: f32, lm: f32, what: &str| {
        let fwd = (lp - l0) / eps;
        let bwd = (l0 - lm) / eps;
        let numeric = (lp - lm) / (2.0 * eps);
        // Kink detection: the two one-sided slopes disagree.
        if (fwd - bwd).abs() > 0.2 * 1.0f32.max(fwd.abs()).max(bwd.abs()) {
            skipped += 1;
            return;
        }
        checked += 1;
        let denom = 1.0f32.max(analytic.abs()).max(numeric.abs());
        assert!(
            (analytic - numeric).abs() / denom < tol,
            "{what}: analytic {analytic} vs numeric {numeric}"
        );
    };

    // Sampled input coordinates.
    let stride = (x.len() / 16).max(1);
    for i in (0..x.len()).step_by(stride) {
        let mut xp = x.clone();
        xp.data_mut()[i] += eps;
        let lp = loss(layer, &xp);
        xp.data_mut()[i] -= 2.0 * eps;
        let lm = loss(layer, &xp);
        agree(dx.data()[i], lp, lm, &format!("dx[{i}]"));
    }

    // Sampled parameter coordinates. Collect analytic grads first.
    let mut analytic_grads: Vec<Vec<f32>> = Vec::new();
    layer.visit_params(&mut |p: &mut Param| analytic_grads.push(p.grad.data().to_vec()));
    for (pi, grads) in analytic_grads.iter().enumerate() {
        let plen = grads.len();
        let stride = (plen / 8).max(1);
        for k in (0..plen).step_by(stride) {
            let perturb = |layer: &mut dyn Layer, delta: f32| {
                let mut idx = 0;
                layer.visit_params(&mut |p: &mut Param| {
                    if idx == pi {
                        p.value.data_mut()[k] += delta;
                    }
                    idx += 1;
                });
            };
            perturb(layer, eps);
            let lp = loss(layer, x);
            perturb(layer, -2.0 * eps);
            let lm = loss(layer, x);
            perturb(layer, eps); // restore
            agree(grads[k], lp, lm, &format!("param {pi}[{k}]"));
        }
    }
    assert!(
        checked >= skipped,
        "too many kink-skipped coordinates ({skipped} skipped, {checked} checked)"
    );
}
