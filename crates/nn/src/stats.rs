//! Per-layer FLOP and wall-time counters for the dense hot path.
//!
//! Counters are thread-local (analogous to `StaStats` in the
//! synthesis pipeline): the agent networks always run their
//! forward/backward on the thread driving the training loop, so the
//! loop snapshots [`NnStats::snapshot`] before training and reads the
//! delta with [`NnStats::since`] afterwards without interference from
//! other tests or runs sharing the process. Kernel worker threads
//! never record — each layer records its whole-call FLOP count and
//! elapsed wall time on the calling thread.

use std::cell::Cell;
use std::time::Duration;

thread_local! {
    static CONV_FWD: Cell<u64> = const { Cell::new(0) };
    static CONV_BWD: Cell<u64> = const { Cell::new(0) };
    static LIN_FWD: Cell<u64> = const { Cell::new(0) };
    static LIN_BWD: Cell<u64> = const { Cell::new(0) };
    static FLOPS: Cell<u64> = const { Cell::new(0) };
    static NANOS: Cell<u64> = const { Cell::new(0) };
    // Pre-registered per-thread mirrors into the global observability
    // registry, so the per-layer record path never touches the
    // registration mutex.
    static OBS: ObsHandles = ObsHandles::new();
}

struct ObsHandles {
    calls: [rlmul_obs::Counter; 4],
    flops: rlmul_obs::Counter,
    seconds: rlmul_obs::Histo,
}

impl ObsHandles {
    fn new() -> Self {
        let obs = rlmul_obs::global();
        let help = "Dense-kernel layer calls by op.";
        ObsHandles {
            calls: [
                obs.labeled_counter("rlmul_nn_layer_calls_total", help, &[("op", "conv_fwd")]),
                obs.labeled_counter("rlmul_nn_layer_calls_total", help, &[("op", "conv_bwd")]),
                obs.labeled_counter("rlmul_nn_layer_calls_total", help, &[("op", "linear_fwd")]),
                obs.labeled_counter("rlmul_nn_layer_calls_total", help, &[("op", "linear_bwd")]),
            ],
            flops: obs.counter("rlmul_nn_flops_total", "Multiply-add work, 2 FLOP each."),
            seconds: obs.histogram("rlmul_nn_layer_seconds", "Wall time per dense layer call."),
        }
    }
}

/// Which hot-path operation a layer is recording.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Op {
    ConvForward,
    ConvBackward,
    LinearForward,
    LinearBackward,
}

/// Adds one completed layer call to the calling thread's counters.
pub(crate) fn record(op: Op, flops: u64, elapsed: Duration) {
    let counter = match op {
        Op::ConvForward => &CONV_FWD,
        Op::ConvBackward => &CONV_BWD,
        Op::LinearForward => &LIN_FWD,
        Op::LinearBackward => &LIN_BWD,
    };
    counter.with(|c| c.set(c.get() + 1));
    FLOPS.with(|c| c.set(c.get() + flops));
    NANOS.with(|c| c.set(c.get() + elapsed.as_nanos() as u64));
    OBS.with(|h| {
        h.calls[op as usize].inc();
        h.flops.add(flops);
        h.seconds.observe_duration(elapsed);
    });
}

/// Cumulative dense-kernel work counters for the current thread.
///
/// Analogous to the pipeline's `StaStats`: optimizers snapshot at the
/// start of a run and report `NnStats::snapshot().since(start)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NnStats {
    /// `Conv2d::forward` calls.
    pub conv_forwards: u64,
    /// `Conv2d::backward` calls.
    pub conv_backwards: u64,
    /// `Linear::forward` calls.
    pub linear_forwards: u64,
    /// `Linear::backward` calls.
    pub linear_backwards: u64,
    /// Multiply–add work across all calls, counted as 2 FLOP each.
    pub flops: u64,
    /// Wall time spent inside the counted calls, nanoseconds.
    pub nanos: u64,
}

impl NnStats {
    /// Current cumulative counters of the calling thread.
    pub fn snapshot() -> NnStats {
        NnStats {
            conv_forwards: CONV_FWD.with(Cell::get),
            conv_backwards: CONV_BWD.with(Cell::get),
            linear_forwards: LIN_FWD.with(Cell::get),
            linear_backwards: LIN_BWD.with(Cell::get),
            flops: FLOPS.with(Cell::get),
            nanos: NANOS.with(Cell::get),
        }
    }

    /// Work performed between `earlier` and this snapshot.
    pub fn since(self, earlier: NnStats) -> NnStats {
        NnStats {
            conv_forwards: self.conv_forwards.saturating_sub(earlier.conv_forwards),
            conv_backwards: self.conv_backwards.saturating_sub(earlier.conv_backwards),
            linear_forwards: self.linear_forwards.saturating_sub(earlier.linear_forwards),
            linear_backwards: self.linear_backwards.saturating_sub(earlier.linear_backwards),
            flops: self.flops.saturating_sub(earlier.flops),
            nanos: self.nanos.saturating_sub(earlier.nanos),
        }
    }

    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: NnStats) {
        self.conv_forwards += other.conv_forwards;
        self.conv_backwards += other.conv_backwards;
        self.linear_forwards += other.linear_forwards;
        self.linear_backwards += other.linear_backwards;
        self.flops += other.flops;
        self.nanos += other.nanos;
    }

    /// Achieved throughput over the counted wall time.
    pub fn gflops_per_sec(&self) -> f64 {
        if self.nanos == 0 {
            return 0.0;
        }
        self.flops as f64 / self.nanos as f64
    }

    /// One-line rendering of the *deterministic* work counters (no
    /// wall time), for outputs that must be byte-identical across
    /// reruns of a seeded search (the CLI pipeline line).
    pub fn render_work(&self) -> String {
        format!(
            "nn {:.1} MFLOP; conv {}+{} fwd+bwd, linear {}+{} fwd+bwd",
            self.flops as f64 / 1e6,
            self.conv_forwards,
            self.conv_backwards,
            self.linear_forwards,
            self.linear_backwards,
        )
    }

    /// One-line human-readable rendering including measured wall time
    /// and throughput, for bench reports.
    pub fn render(&self) -> String {
        format!(
            "nn {:.1} MFLOP in {:.1} ms ({:.2} GFLOP/s); conv {}+{} fwd+bwd, \
             linear {}+{} fwd+bwd",
            self.flops as f64 / 1e6,
            self.nanos as f64 / 1e6,
            self.gflops_per_sec(),
            self.conv_forwards,
            self.conv_backwards,
            self.linear_forwards,
            self.linear_backwards,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_and_since_subtracts() {
        let before = NnStats::snapshot();
        record(Op::ConvForward, 100, Duration::from_nanos(50));
        record(Op::LinearBackward, 20, Duration::from_nanos(10));
        let delta = NnStats::snapshot().since(before);
        assert_eq!(delta.conv_forwards, 1);
        assert_eq!(delta.linear_backwards, 1);
        assert_eq!(delta.flops, 120);
        assert_eq!(delta.nanos, 60);
    }

    #[test]
    fn render_reports_throughput() {
        let s = NnStats { flops: 2_000_000, nanos: 1_000_000, ..NnStats::default() };
        assert_eq!(s.gflops_per_sec(), 2.0);
        assert!(s.render().contains("GFLOP/s"));
    }
}
