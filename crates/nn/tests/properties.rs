//! Property tests pinning the optimized GEMM/im2col kernels to the
//! retained naive reference across random shapes, strides and
//! paddings. These run in release CI too, where the per-call debug
//! oracle assertions inside the layers are compiled out.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rlmul_nn::{gemm, im2col, reference, Conv2d, Layer, Linear, Tensor};

fn fill(rng: &mut StdRng, len: usize) -> Vec<f32> {
    (0..len).map(|_| rng.gen_range(-2.0f32..2.0)).collect()
}

/// Collects (value, grad) snapshots of a layer's parameters in
/// declaration order (weight first, then bias).
fn params(layer: &mut dyn Layer) -> Vec<(Vec<f32>, Vec<f32>)> {
    let mut out = Vec::new();
    layer.visit_params(&mut |p| out.push((p.value.data().to_vec(), p.grad.data().to_vec())));
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn gemm_variants_match_naive_matmul(
        dims in (1usize..9, 1usize..33, 1usize..17),
        seed in 0u64..1 << 32,
    ) {
        let (m, k, n) = dims;
        let mut rng = StdRng::seed_from_u64(seed);
        let a = fill(&mut rng, m * k);
        let b = fill(&mut rng, k * n);
        let c0 = fill(&mut rng, m * n); // accumulate into non-zero C

        let bt: Vec<f32> = (0..n * k).map(|i| b[(i % k) * n + i / k]).collect();
        let at: Vec<f32> = (0..k * m).map(|i| a[(i % m) * k + i / m]).collect();

        let mut got = c0.clone();
        gemm::gemm_nn(&a, &b, &mut got, m, k, n);
        let mut want = c0.clone();
        reference::matmul_nn(&a, &b, &mut want, m, k, n);
        reference::assert_close("gemm_nn", &got, &want);

        let mut got = c0.clone();
        gemm::gemm_nt(&a, &bt, &mut got, m, k, n);
        reference::assert_close("gemm_nt", &got, &want);

        let mut got = c0.clone();
        gemm::gemm_tn(&at, &b, &mut got, m, k, n);
        reference::assert_close("gemm_tn", &got, &want);
    }

    #[test]
    fn im2col_gemm_conv_matches_naive_loops(
        geom in (1usize..4, 1usize..4, 1usize..4, 1usize..4),
        hw in (1usize..7, 1usize..7),
        sp in (1usize..3, 0usize..3),
        seed in 0u64..1 << 32,
    ) {
        let (n, in_c, out_c, k) = geom;
        let (mut h, mut w) = hw;
        let (stride, pad) = sp;
        // Keep the geometry valid while still covering kernels larger
        // than the unpadded input (k > h with pad making up the rest).
        h = h.max(k.saturating_sub(2 * pad));
        w = w.max(k.saturating_sub(2 * pad));

        let mut rng = StdRng::seed_from_u64(seed);
        let mut conv = Conv2d::new(in_c, out_c, k, stride, pad, &mut rng);
        let x = Tensor::from_vec(&[n, in_c, h, w], fill(&mut rng, n * in_c * h * w));

        let before = params(&mut conv);
        let (weight, bias) = (&before[0].0, &before[1].0);
        let y = conv.forward(&x, true);
        let want_y = reference::conv2d_forward(
            x.data(), weight, bias, n, in_c, h, w, out_c, k, stride, pad,
        );
        reference::assert_close("conv forward", y.data(), &want_y);

        let g = Tensor::from_vec(y.shape(), fill(&mut rng, y.len()));
        let dx = conv.backward(&g);
        let mut dw_ref = before[0].1.clone();
        let mut db_ref = before[1].1.clone();
        let dx_ref = reference::conv2d_backward(
            x.data(), g.data(), weight, &mut dw_ref, &mut db_ref,
            n, in_c, h, w, out_c, k, stride, pad,
        );
        reference::assert_close("conv dx", dx.data(), &dx_ref);
        let after = params(&mut conv);
        reference::assert_close("conv dW", &after[0].1, &dw_ref);
        reference::assert_close("conv db", &after[1].1, &db_ref);
    }

    #[test]
    fn linear_matches_naive_loops(
        dims in (1usize..9, 1usize..33, 1usize..17),
        seed in 0u64..1 << 32,
    ) {
        let (n, in_f, out_f) = dims;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut lin = Linear::new(in_f, out_f, &mut rng);
        let x = Tensor::from_vec(&[n, in_f], fill(&mut rng, n * in_f));

        let before = params(&mut lin);
        let (weight, bias) = (&before[0].0, &before[1].0);
        let y = lin.forward(&x, true);
        let want_y = reference::linear_forward(x.data(), weight, bias, n, in_f, out_f);
        reference::assert_close("linear forward", y.data(), &want_y);

        let g = Tensor::from_vec(y.shape(), fill(&mut rng, y.len()));
        let dx = lin.backward(&g);
        let mut dw_ref = before[0].1.clone();
        let mut db_ref = before[1].1.clone();
        let dx_ref = reference::linear_backward(
            x.data(), g.data(), weight, &mut dw_ref, &mut db_ref, n, in_f, out_f,
        );
        reference::assert_close("linear dx", dx.data(), &dx_ref);
        let after = params(&mut lin);
        reference::assert_close("linear dW", &after[0].1, &dw_ref);
        reference::assert_close("linear db", &after[1].1, &db_ref);
    }

    #[test]
    fn col2im_is_the_adjoint_of_im2col(
        geom in (1usize..4, 1usize..4),
        hw in (1usize..7, 1usize..7),
        sp in (1usize..3, 0usize..3),
        seed in 0u64..1 << 32,
    ) {
        let (c, k) = geom;
        let (mut h, mut w) = hw;
        let (stride, pad) = sp;
        h = h.max(k.saturating_sub(2 * pad));
        w = w.max(k.saturating_sub(2 * pad));
        let oh = (h + 2 * pad - k) / stride + 1;
        let ow = (w + 2 * pad - k) / stride + 1;

        let mut rng = StdRng::seed_from_u64(seed);
        let x = fill(&mut rng, c * h * w);
        let g = fill(&mut rng, c * k * k * oh * ow);
        let mut cols = vec![0.0f32; c * k * k * oh * ow];
        im2col::im2col(&x, c, h, w, k, stride, pad, oh, ow, &mut cols);
        let mut dx = vec![0.0f32; c * h * w];
        im2col::col2im(&g, c, h, w, k, stride, pad, oh, ow, &mut dx);

        // <im2col(x), g> == <x, col2im(g)> — the defining adjoint
        // identity, in f64 to keep the comparison itself exact-ish.
        let lhs: f64 = cols.iter().zip(&g).map(|(&a, &b)| a as f64 * b as f64).sum();
        let rhs: f64 = x.iter().zip(&dx).map(|(&a, &b)| a as f64 * b as f64).sum();
        prop_assert!(
            (lhs - rhs).abs() <= 1e-3 * lhs.abs().max(1.0),
            "adjoint identity violated: {lhs} vs {rhs}"
        );
    }
}
