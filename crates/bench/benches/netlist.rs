//! Criterion benchmarks for the arena-netlist evaluate pipeline:
//! full-rebuild vs incremental step latency, and the stage costs of
//! the incremental path (retarget splice, delta lint, session synth).
//!
//! The heavyweight sweep with bit-identity assertions, allocation
//! counts and the span-profiler breakdown lives in the
//! `bench_netlist` binary (`results/BENCH_netlist.json`); these
//! benches exist so `cargo bench` tracks the same hot paths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rlmul_ct::{CompressorTree, PpgKind};
use rlmul_rtl::{lint, lint_delta, IncrementalMultiplier, MultiplierNetlist};
use rlmul_synth::{IncrementalSynthesis, SynthesisOptions, Synthesizer};

/// A deterministic walk of `steps` legal actions from `tree` (same
/// LCG as the `bench_netlist` binary so both measure the same states).
fn walk(tree: &CompressorTree, steps: usize) -> Vec<CompressorTree> {
    let mut seed = 0x9e3779b97f4a7c15u64 ^ tree.bits() as u64;
    let mut cur = tree.clone();
    let mut out = Vec::with_capacity(steps);
    for _ in 0..steps {
        let actions = cur.valid_actions();
        if actions.is_empty() {
            break;
        }
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        cur = cur.apply_action(actions[(seed >> 33) as usize % actions.len()]).expect("legal");
        out.push(cur.clone());
    }
    out
}

fn options_for(tree: &CompressorTree) -> Vec<SynthesisOptions> {
    let netlist = MultiplierNetlist::elaborate(tree).expect("elaborates").into_netlist();
    let anchor = Synthesizer::nangate45()
        .run(&netlist, &SynthesisOptions::default())
        .expect("anchor synthesizes");
    [0.7, 0.85, 1.0, 1.15]
        .iter()
        .map(|m| SynthesisOptions { target_delay_ns: Some(m * anchor.delay_ns), max_upsizes: 800 })
        .collect()
}

fn bench_step(c: &mut Criterion) {
    let mut g = c.benchmark_group("netlist_step");
    for bits in [16usize, 32] {
        let tree = CompressorTree::wallace(bits, PpgKind::And).expect("legal");
        let states = walk(&tree, 8);
        let options = options_for(&tree);

        g.bench_with_input(BenchmarkId::new("full_rebuild", bits), &states, |b, states| {
            let synth = Synthesizer::nangate45();
            b.iter(|| {
                for t in states {
                    let netlist =
                        MultiplierNetlist::elaborate(t).expect("elaborates").into_netlist();
                    assert_eq!(lint(&netlist).errors(), 0);
                    criterion::black_box(synth.run_many(&netlist, &options).expect("synthesizes"));
                }
            })
        });

        g.bench_with_input(BenchmarkId::new("incremental", bits), &states, |b, states| {
            b.iter(|| {
                let mut mul = IncrementalMultiplier::new(&tree).expect("elaborates");
                let mut synth = IncrementalSynthesis::nangate45();
                synth.run_many(mul.netlist(), &options).expect("synthesizes");
                for t in states {
                    mul.retarget(t).expect("retargets");
                    assert_eq!(lint_delta(mul.arena(), mul.last_delta()).errors(), 0);
                    criterion::black_box(
                        synth.run_many(mul.netlist(), &options).expect("synthesizes"),
                    );
                }
            })
        });
    }
    g.finish();
}

fn bench_stages(c: &mut Criterion) {
    let mut g = c.benchmark_group("netlist_stages");
    let tree = CompressorTree::wallace(32, PpgKind::And).expect("legal");
    let states = walk(&tree, 8);

    g.bench_function("retarget_32", |b| {
        b.iter(|| {
            let mut mul = IncrementalMultiplier::new(&tree).expect("elaborates");
            for t in &states {
                mul.retarget(t).expect("retargets");
            }
        })
    });

    g.bench_function("lint_delta_32", |b| {
        let mut mul = IncrementalMultiplier::new(&tree).expect("elaborates");
        mul.retarget(&states[0]).expect("retargets");
        b.iter(|| criterion::black_box(lint_delta(mul.arena(), mul.last_delta()).errors()))
    });
    g.finish();
}

criterion_group!(benches, bench_step, bench_stages);
criterion_main!(benches);
