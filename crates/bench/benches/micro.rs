//! Criterion microbenchmarks over every subsystem in the
//! optimization loop: state manipulation, RTL elaboration, synthesis,
//! equivalence-checking throughput, agent-network inference and the
//! GOMIL solver.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rlmul_baselines::{gomil, GomilWeights};
use rlmul_core::{EnvConfig, MulEnv};
use rlmul_ct::{CompressorTree, PpgKind};
use rlmul_lec::{PortValues, Simulator};
use rlmul_nn::{build_trunk, Layer, Tensor, TrunkConfig};
use rlmul_rtl::MultiplierNetlist;
use rlmul_synth::{analyze, MappedNetlist, Library, SynthesisOptions, Synthesizer};

fn bench_ct(c: &mut Criterion) {
    let mut g = c.benchmark_group("ct");
    for bits in [8usize, 16] {
        let tree = CompressorTree::wallace(bits, PpgKind::And).expect("legal");
        g.bench_with_input(BenchmarkId::new("assign_stages", bits), &tree, |b, t| {
            b.iter(|| t.assign_stages().expect("assignable"))
        });
        g.bench_with_input(BenchmarkId::new("action_mask", bits), &tree, |b, t| {
            b.iter(|| t.action_mask())
        });
        let action = tree.valid_actions()[0];
        g.bench_with_input(BenchmarkId::new("apply_and_legalize", bits), &tree, |b, t| {
            b.iter(|| t.apply_action(action).expect("valid"))
        });
    }
    g.finish();
}

fn bench_rtl_synth(c: &mut Criterion) {
    let mut g = c.benchmark_group("rtl_synth");
    for bits in [8usize, 16] {
        let tree = CompressorTree::dadda(bits, PpgKind::And).expect("legal");
        g.bench_with_input(BenchmarkId::new("elaborate", bits), &tree, |b, t| {
            b.iter(|| MultiplierNetlist::elaborate(t).expect("elaborates"))
        });
        let netlist = MultiplierNetlist::elaborate(&tree).expect("elaborates").into_netlist();
        let lib = Library::nangate45();
        g.bench_with_input(BenchmarkId::new("map_and_sta", bits), &netlist, |b, nl| {
            b.iter(|| {
                let m = MappedNetlist::map(nl, &lib);
                analyze(&m).worst_delay_ns
            })
        });
        let synth = Synthesizer::nangate45();
        g.bench_with_input(BenchmarkId::new("min_area_synthesis", bits), &netlist, |b, nl| {
            b.iter(|| synth.run(nl, &SynthesisOptions::default()).expect("synthesizes"))
        });
        let anchor = synth.run(&netlist, &SynthesisOptions::default()).expect("synthesizes");
        let opts = SynthesisOptions::with_target(0.8 * anchor.delay_ns);
        g.bench_with_input(BenchmarkId::new("sized_synthesis", bits), &netlist, |b, nl| {
            b.iter(|| synth.run(nl, &opts).expect("synthesizes"))
        });
    }
    g.finish();
}

fn bench_lec(c: &mut Criterion) {
    let tree = CompressorTree::dadda(8, PpgKind::And).expect("legal");
    let netlist = MultiplierNetlist::elaborate(&tree).expect("elaborates").into_netlist();
    let sim = Simulator::new(&netlist).expect("combinational");
    let mut rng = StdRng::seed_from_u64(5);
    let a: Vec<u64> = (0..64).map(|_| rng.gen::<u64>() & 0xff).collect();
    let b: Vec<u64> = (0..64).map(|_| rng.gen::<u64>() & 0xff).collect();
    let stim = vec![PortValues::pack(&a, 8), PortValues::pack(&b, 8)];
    c.bench_function("lec/simulate_64_vectors", |bch| {
        bch.iter(|| sim.run(&stim).expect("shapes match"))
    });
}

fn bench_nn(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(9);
    let cfg = TrunkConfig { in_channels: 2, channels: vec![8, 16, 32], blocks_per_stage: 1 };
    let mut trunk = build_trunk(&cfg, &mut rng);
    let x = Tensor::kaiming(&[1, 2, 16, 16], 32, &mut rng);
    c.bench_function("nn/trunk_forward_1x2x16x16", |b| {
        b.iter(|| trunk.forward(&x, false))
    });
    let batch = Tensor::kaiming(&[8, 2, 16, 16], 32, &mut rng);
    c.bench_function("nn/trunk_fwd_bwd_batch8", |b| {
        b.iter(|| {
            let y = trunk.forward(&batch, true);
            trunk.backward(&y)
        })
    });
}

fn bench_env_and_gomil(c: &mut Criterion) {
    let mut env = MulEnv::new(EnvConfig::new(8, PpgKind::And)).expect("builds");
    let mut rng = StdRng::seed_from_u64(3);
    c.bench_function("env/step_8bit_cached_mix", |b| {
        b.iter(|| {
            let mask = env.action_mask();
            let legal: Vec<usize> =
                mask.iter().enumerate().filter(|(_, &ok)| ok).map(|(i, _)| i).collect();
            env.step(legal[rng.gen_range(0..legal.len())]).expect("steps")
        })
    });
    c.bench_function("gomil/solve_16bit", |b| {
        b.iter(|| gomil(16, PpgKind::And).expect("solves"))
    });
    let w = GomilWeights::default();
    c.bench_function("gomil/solve_32bit", |b| {
        b.iter(|| rlmul_baselines::gomil_weighted(32, PpgKind::And, w).expect("solves"))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_ct, bench_rtl_synth, bench_lec, bench_nn, bench_env_and_gomil
}
criterion_main!(benches);
