//! Criterion microbenchmarks over every subsystem in the
//! optimization loop: state manipulation, RTL elaboration, synthesis,
//! equivalence-checking throughput, agent-network inference and the
//! GOMIL solver.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rlmul_baselines::{gomil, GomilWeights};
use rlmul_core::{EnvConfig, MulEnv};
use rlmul_ct::{CompressorTree, PpgKind};
use rlmul_lec::{PortValues, Simulator};
use rlmul_nn::{build_trunk, gemm, reference, Conv2d, Layer, Tensor, TrunkConfig};
use rlmul_rtl::MultiplierNetlist;
use rlmul_synth::{
    analyze, Drive, IncrementalSta, Library, MappedNetlist, SynthesisOptions, Synthesizer,
};

fn bench_ct(c: &mut Criterion) {
    let mut g = c.benchmark_group("ct");
    for bits in [8usize, 16] {
        let tree = CompressorTree::wallace(bits, PpgKind::And).expect("legal");
        g.bench_with_input(BenchmarkId::new("assign_stages", bits), &tree, |b, t| {
            b.iter(|| t.assign_stages().expect("assignable"))
        });
        g.bench_with_input(BenchmarkId::new("action_mask", bits), &tree, |b, t| {
            b.iter(|| t.action_mask())
        });
        let action = tree.valid_actions()[0];
        g.bench_with_input(BenchmarkId::new("apply_and_legalize", bits), &tree, |b, t| {
            b.iter(|| t.apply_action(action).expect("valid"))
        });
    }
    g.finish();
}

fn bench_rtl_synth(c: &mut Criterion) {
    let mut g = c.benchmark_group("rtl_synth");
    for bits in [8usize, 16] {
        let tree = CompressorTree::dadda(bits, PpgKind::And).expect("legal");
        g.bench_with_input(BenchmarkId::new("elaborate", bits), &tree, |b, t| {
            b.iter(|| MultiplierNetlist::elaborate(t).expect("elaborates"))
        });
        let netlist = MultiplierNetlist::elaborate(&tree).expect("elaborates").into_netlist();
        let lib = Library::nangate45();
        g.bench_with_input(BenchmarkId::new("map_and_sta", bits), &netlist, |b, nl| {
            b.iter(|| {
                let m = MappedNetlist::map(nl, &lib);
                analyze(&m).worst_delay_ns
            })
        });
        let synth = Synthesizer::nangate45();
        g.bench_with_input(BenchmarkId::new("min_area_synthesis", bits), &netlist, |b, nl| {
            b.iter(|| synth.run(nl, &SynthesisOptions::default()).expect("synthesizes"))
        });
        let anchor = synth.run(&netlist, &SynthesisOptions::default()).expect("synthesizes");
        let opts = SynthesisOptions::with_target(0.8 * anchor.delay_ns);
        g.bench_with_input(BenchmarkId::new("sized_synthesis", bits), &netlist, |b, nl| {
            b.iter(|| synth.run(nl, &opts).expect("synthesizes"))
        });
    }
    g.finish();
}

fn bench_lec(c: &mut Criterion) {
    let tree = CompressorTree::dadda(8, PpgKind::And).expect("legal");
    let netlist = MultiplierNetlist::elaborate(&tree).expect("elaborates").into_netlist();
    let sim = Simulator::new(&netlist).expect("combinational");
    let mut rng = StdRng::seed_from_u64(5);
    let a: Vec<u64> = (0..64).map(|_| rng.gen::<u64>() & 0xff).collect();
    let b: Vec<u64> = (0..64).map(|_| rng.gen::<u64>() & 0xff).collect();
    let stim = vec![PortValues::pack(&a, 8), PortValues::pack(&b, 8)];
    c.bench_function("lec/simulate_64_vectors", |bch| {
        bch.iter(|| sim.run(&stim).expect("shapes match"))
    });
}

/// Formal verification layer: structural lint throughput, raw CDCL
/// solver throughput on a pigeonhole instance, and an end-to-end
/// SAT CEC proof (Wallace vs golden Dadda) with sweeping.
fn bench_formal(c: &mut Criterion) {
    let mut g = c.benchmark_group("formal");
    let tree16 = CompressorTree::dadda(16, PpgKind::And).expect("legal");
    let nl16 = MultiplierNetlist::elaborate(&tree16).expect("elaborates").into_netlist();
    g.bench_function("lint_16b_dadda", |b| b.iter(|| rlmul_rtl::lint(&nl16).errors()));

    g.bench_function("sat_php_6_holes", |b| {
        b.iter(|| {
            use rlmul_sat::{Lit, SolveResult, Solver};
            let (pigeons, holes) = (7usize, 6usize);
            let mut s = Solver::new();
            let vars: Vec<Vec<Lit>> =
                (0..pigeons).map(|_| (0..holes).map(|_| Lit::pos(s.new_var())).collect()).collect();
            for row in &vars {
                s.add_clause(row);
            }
            for h in 0..holes {
                for (p1, row1) in vars.iter().enumerate() {
                    for row2 in vars.iter().skip(p1 + 1) {
                        s.add_clause(&[!row1[h], !row2[h]]);
                    }
                }
            }
            assert_eq!(s.solve(), SolveResult::Unsat);
            s.stats().conflicts
        })
    });

    let wallace8 = CompressorTree::wallace(8, PpgKind::And).expect("legal");
    let nl8 = MultiplierNetlist::elaborate(&wallace8).expect("elaborates").into_netlist();
    g.bench_function("cec_8b_wallace_vs_dadda", |b| {
        b.iter(|| {
            let r = rlmul_lec::check_formal(&nl8, 8, PpgKind::And).expect("checks");
            assert!(r.equivalent);
            r.conflicts
        })
    });
    g.finish();
}

fn bench_nn(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(9);
    let cfg = TrunkConfig { in_channels: 2, channels: vec![8, 16, 32], blocks_per_stage: 1 };
    let mut trunk = build_trunk(&cfg, &mut rng);
    let x = Tensor::kaiming(&[1, 2, 16, 16], 32, &mut rng);
    c.bench_function("nn/trunk_forward_1x2x16x16", |b| b.iter(|| trunk.forward(&x, false)));
    let batch = Tensor::kaiming(&[8, 2, 16, 16], 32, &mut rng);
    c.bench_function("nn/trunk_fwd_bwd_batch8", |b| {
        b.iter(|| {
            let y = trunk.forward(&batch, true);
            trunk.backward(&y)
        })
    });
}

/// GEMM/im2col kernels vs the retained naive seed kernels at the
/// paper's state-tensor shape (an A2C batch over `n_envs = 4`
/// workers: `[4, 2, 16, 16]`) — the kernel-speedup acceptance bench.
fn bench_nn_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("nn_kernels");
    let (n, ic, oc, k, h, w) = (4usize, 2usize, 16usize, 3usize, 16usize, 16usize);
    let mut rng = StdRng::seed_from_u64(31);
    let mut conv = Conv2d::new(ic, oc, k, 1, 1, &mut rng);
    let x = Tensor::kaiming(&[n, ic, h, w], ic * k * k, &mut rng);
    g.bench_function("conv_fwd_bwd_gemm_4x2x16x16", |b| {
        b.iter(|| {
            let y = conv.forward(&x, true);
            conv.backward(&y)
        })
    });
    let weight: Vec<f32> = (0..oc * ic * k * k).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let bias = vec![0.1f32; oc];
    g.bench_function("conv_fwd_bwd_naive_4x2x16x16", |b| {
        b.iter(|| {
            let y = reference::conv2d_forward(x.data(), &weight, &bias, n, ic, h, w, oc, k, 1, 1);
            let mut dw = vec![0.0f32; weight.len()];
            let mut db = vec![0.0f32; oc];
            reference::conv2d_backward(
                x.data(),
                &y,
                &weight,
                &mut dw,
                &mut db,
                n,
                ic,
                h,
                w,
                oc,
                k,
                1,
                1,
            )
        })
    });
    // Raw dense kernel at a head-sized shape.
    let (m, kk, nn) = (32usize, 256usize, 128usize);
    let a: Vec<f32> = (0..m * kk).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let bmat: Vec<f32> = (0..kk * nn).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let mut cbuf = vec![0.0f32; m * nn];
    g.bench_function("gemm_nn_32x256x128", |b| {
        b.iter(|| {
            cbuf.fill(0.0);
            gemm::gemm_nn(&a, &bmat, &mut cbuf, m, kk, nn);
            cbuf[0]
        })
    });
    g.bench_function("matmul_naive_32x256x128", |b| {
        b.iter(|| {
            cbuf.fill(0.0);
            reference::matmul_nn(&a, &bmat, &mut cbuf, m, kk, nn);
            cbuf[0]
        })
    });
    g.finish();
}

fn bench_env_and_gomil(c: &mut Criterion) {
    let mut env = MulEnv::new(EnvConfig::new(8, PpgKind::And)).expect("builds");
    let mut rng = StdRng::seed_from_u64(3);
    c.bench_function("env/step_8bit_cached_mix", |b| {
        b.iter(|| {
            let mask = env.action_mask();
            let legal: Vec<usize> =
                mask.iter().enumerate().filter(|(_, &ok)| ok).map(|(i, _)| i).collect();
            env.step(legal[rng.gen_range(0..legal.len())]).expect("steps")
        })
    });
    c.bench_function("gomil/solve_16bit", |b| b.iter(|| gomil(16, PpgKind::And).expect("solves")));
    let w = GomilWeights::default();
    c.bench_function("gomil/solve_32bit", |b| {
        b.iter(|| rlmul_baselines::gomil_weighted(32, PpgKind::And, w).expect("solves"))
    });
}

fn bench_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline");
    let tree = CompressorTree::wallace(16, PpgKind::And).expect("legal");
    let netlist = MultiplierNetlist::elaborate(&tree).expect("elaborates").into_netlist();
    let lib = Library::nangate45();
    let synth = Synthesizer::nangate45();

    // Incremental vs full STA after one TILOS-style sizing batch of 8
    // gates. The toggle alternates the batch between X1 and X2 so every
    // iteration propagates real arrival changes.
    let resized: Vec<usize> = (0..netlist.gates().len()).step_by(97).take(8).collect();
    let mut m_full = MappedNetlist::map(&netlist, &lib);
    g.bench_function("sta_full_reanalyze_16b", |b| {
        let mut hi = false;
        b.iter(|| {
            hi = !hi;
            let d = if hi { Drive::X2 } else { Drive::X1 };
            for &gi in &resized {
                m_full.set_drive(gi, d);
            }
            analyze(&m_full).worst_delay_ns
        })
    });
    let mut m_inc = MappedNetlist::map(&netlist, &lib);
    let mut engine = IncrementalSta::new();
    engine.analyze_full(&m_inc);
    g.bench_function("sta_incremental_update_16b", |b| {
        let mut hi = false;
        b.iter(|| {
            hi = !hi;
            let d = if hi { Drive::X2 } else { Drive::X1 };
            for &gi in &resized {
                m_inc.set_drive(gi, d);
            }
            engine.update(&m_inc, &resized).worst_delay_ns
        })
    });

    // Four-delay-target evaluation fan-out: serial reference vs the
    // scoped-thread pipeline (the ≥2×-on-4-cores acceptance bench).
    let anchor = synth.run(&netlist, &SynthesisOptions::default()).expect("synthesizes");
    let options: Vec<SynthesisOptions> = [0.7, 0.85, 1.0, 1.15]
        .iter()
        .map(|&s| SynthesisOptions::with_target(s * anchor.delay_ns))
        .collect();
    g.bench_function("synth_4targets_serial_16b", |b| {
        b.iter(|| synth.run_many_serial(&netlist, &options).expect("synthesizes"))
    });
    g.bench_function("synth_4targets_parallel_16b", |b| {
        b.iter(|| synth.run_many(&netlist, &options).expect("synthesizes"))
    });

    // Warm-cache evaluation: the cost of re-visiting a known state.
    let mut env = MulEnv::new(EnvConfig::new(16, PpgKind::And)).expect("builds");
    let tree16 = env.current().clone();
    env.evaluate(&tree16).expect("evaluates");
    g.bench_function("evaluate_cache_hit_16b", |b| {
        b.iter(|| env.evaluate(&tree16).expect("evaluates").cost)
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_ct, bench_rtl_synth, bench_lec, bench_formal, bench_nn, bench_nn_kernels, bench_env_and_gomil, bench_pipeline
}
criterion_main!(benches);
