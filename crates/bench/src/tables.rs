//! The shared driver behind Tables I–III: optimize every method under
//! every preference, sweep the resulting designs (optionally wrapped
//! in a PE array), extract table rows, Pareto fronts and
//! hypervolumes.

use crate::report::{results_dir, write_points_csv, TextTable};
use crate::runner::{
    front_and_hv, optimize_instrumented, pe_netlist, pick, reference_point, sweep_netlist,
    sweep_tree, to_points2, Budget, DesignSpec, Method, PpaPoint, Preference,
};
use rlmul_core::{EvalCache, RlMulError};
use rlmul_pareto::Point2;
use rlmul_telemetry::TelemetrySink;

/// Everything a table binary needs to print and archive.
#[derive(Debug)]
pub struct TableData {
    /// The design family.
    pub spec: DesignSpec,
    /// `(method, preference, picked point)` cells.
    pub cells: Vec<(Method, Preference, PpaPoint)>,
    /// Per-method Pareto fronts over all synthesized points.
    pub fronts: Vec<(Method, Vec<Point2>)>,
    /// Per-method hypervolume against the shared reference.
    pub hypervolumes: Vec<(Method, f64)>,
    /// The shared reference point.
    pub reference: Point2,
}

/// Runs the full method × preference comparison for one design
/// family. `pe` wraps every design in a `rows × cols` systolic array
/// before synthesis (Tables II / III-right).
///
/// # Errors
///
/// Propagates optimization, elaboration and synthesis errors.
pub fn run_comparison(
    spec: DesignSpec,
    budget: Budget,
    sweep_points: usize,
    pe: Option<(usize, usize)>,
) -> Result<TableData, RlMulError> {
    run_comparison_instrumented(spec, budget, sweep_points, pe, &TelemetrySink::disabled())
}

/// [`run_comparison`] with a telemetry sink threaded through every
/// search method's training loop — pass the sink of a
/// [`rlmul_telemetry::TelemetryWriter`] to capture a full JSONL
/// event stream of the table run (summarize with `rlmul report`).
///
/// # Errors
///
/// As [`run_comparison`].
pub fn run_comparison_instrumented(
    spec: DesignSpec,
    budget: Budget,
    sweep_points: usize,
    pe: Option<(usize, usize)>,
    sink: &TelemetrySink,
) -> Result<TableData, RlMulError> {
    let mut cells = Vec::new();
    let mut method_points: Vec<(Method, Vec<PpaPoint>)> = Vec::new();

    for method in Method::ALL {
        let mut union: Vec<PpaPoint> = Vec::new();
        let mut fixed_sweep: Option<Vec<PpaPoint>> = None;
        for pref in Preference::ALL {
            let sweep = if method.is_search() || fixed_sweep.is_none() {
                let seed = budget.seed
                    ^ (pref as usize as u64).wrapping_mul(0x9e37)
                    ^ (method as usize as u64).wrapping_mul(0x85eb);
                let tree = optimize_instrumented(
                    method,
                    spec,
                    pref,
                    Budget { seed, ..budget },
                    &EvalCache::new(),
                    sink,
                )?;
                let s = match pe {
                    Some((rows, cols)) => {
                        let nl = pe_netlist(&tree, rows, cols)?;
                        sweep_netlist(&nl, sweep_points)?
                    }
                    None => sweep_tree(&tree, sweep_points)?,
                };
                if !method.is_search() {
                    fixed_sweep = Some(s.clone());
                }
                s
            } else {
                fixed_sweep.clone().expect("cached fixed-method sweep")
            };
            cells.push((method, pref, pick(pref, &sweep)));
            union.extend_from_slice(&sweep);
        }
        method_points.push((method, union));
    }

    let union2: Vec<Point2> = method_points.iter().flat_map(|(_, pts)| to_points2(pts)).collect();
    let reference = reference_point(&union2);
    let mut fronts = Vec::new();
    let mut hypervolumes = Vec::new();
    for (method, pts) in &method_points {
        let (front, hv) = front_and_hv(&to_points2(pts), reference);
        fronts.push((*method, front));
        hypervolumes.push((*method, hv));
    }
    Ok(TableData { spec, cells, fronts, hypervolumes, reference })
}

impl TableData {
    /// Renders the paper-style rows (preference-major, method-minor).
    pub fn render(&self, title: &str) -> String {
        let mut table = TextTable::new(["Preference", "Method", "Area (um^2)", "Delay (ns)"]);
        for pref in Preference::ALL {
            for method in Method::ALL {
                let Some((_, _, p)) =
                    self.cells.iter().find(|(m, pr, _)| *m == method && *pr == pref)
                else {
                    continue;
                };
                table.row([
                    pref.label().to_owned(),
                    method.label().to_owned(),
                    format!("{:.0}", p.area),
                    format!("{:.4}", p.delay),
                ]);
            }
        }
        format!("{title}\n\n{}", table.render())
    }

    /// Writes the per-method Pareto fronts as CSV (`figNN` data).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_fronts(&self, stem: &str) -> std::io::Result<std::path::PathBuf> {
        let rows: Vec<Vec<f64>> = self
            .fronts
            .iter()
            .enumerate()
            .flat_map(|(i, (_, front))| {
                front.iter().map(move |p| vec![i as f64, p.x, p.y]).collect::<Vec<_>>()
            })
            .collect();
        let path = results_dir().join(format!("{stem}.csv"));
        write_points_csv(&path, "method_index,area_um2,delay_ns", &rows)?;
        Ok(path)
    }

    /// Renders the hypervolume comparison (Fig. 14 bars).
    pub fn render_hypervolumes(&self) -> String {
        let mut table = TextTable::new(["Method", "Hypervolume", "vs GOMIL"]);
        let gomil = self
            .hypervolumes
            .iter()
            .find(|(m, _)| *m == Method::Gomil)
            .map(|(_, hv)| *hv)
            .unwrap_or(f64::NAN);
        for (method, hv) in &self.hypervolumes {
            table.row([
                method.label().to_owned(),
                format!("{hv:.1}"),
                format!("{:+.1}%", 100.0 * (hv / gomil - 1.0)),
            ]);
        }
        table.render()
    }

    /// Hypervolume of one method.
    pub fn hypervolume(&self, method: Method) -> f64 {
        self.hypervolumes.iter().find(|(m, _)| *m == method).map(|(_, hv)| *hv).unwrap_or(f64::NAN)
    }

    /// Best (lowest) area across search methods for a preference —
    /// used by binaries to print paper-style improvement claims.
    pub fn cell(&self, method: Method, pref: Preference) -> Option<PpaPoint> {
        self.cells.iter().find(|(m, p, _)| *m == method && *p == pref).map(|(_, _, pt)| *pt)
    }
}
