//! Shared experiment machinery: optimize each method, sweep designs
//! across target delays, and extract the paper's table rows.

use rlmul_baselines::{gomil, SaConfig};
use rlmul_core::{
    run_sa_with, train_a2c_with, train_dqn_with, A2cConfig, CostWeights, DqnConfig, EnvConfig,
    EvalCache, MulEnv, RlMulError, TrainHooks,
};
use rlmul_ct::{CompressorTree, PpgKind};
use rlmul_pareto::{hypervolume_2d, pareto_front, Point2};
use rlmul_rtl::{pe_array, MultiplierNetlist, Netlist, PeArrayConfig, PeStyle};
use rlmul_synth::{SynthesisOptions, Synthesizer};
use rlmul_telemetry::TelemetrySink;

/// Which design family an experiment targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DesignSpec {
    /// Operand width.
    pub bits: usize,
    /// Partial-product scheme.
    pub kind: PpgKind,
}

/// Optimization-preference rows of Tables I–III.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Preference {
    /// Area-dominant weights.
    Area,
    /// Delay-dominant weights.
    Timing,
    /// Balanced weights.
    TradeOff,
}

impl Preference {
    /// All three preferences in table order.
    pub const ALL: [Preference; 3] = [Preference::Area, Preference::Timing, Preference::TradeOff];

    /// The corresponding reward weights.
    pub fn weights(self) -> CostWeights {
        match self {
            Preference::Area => CostWeights::AREA,
            Preference::Timing => CostWeights::TIMING,
            Preference::TradeOff => CostWeights::TRADE_OFF,
        }
    }

    /// Table label.
    pub fn label(self) -> &'static str {
        match self {
            Preference::Area => "Area",
            Preference::Timing => "Timing",
            Preference::TradeOff => "Trade-off",
        }
    }
}

/// The five methods of the paper's comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Legacy Wallace tree (paper baseline \[1\]).
    Wallace,
    /// GOMIL ILP (paper baseline \[16\]), solved exactly.
    Gomil,
    /// Simulated annealing.
    Sa,
    /// Native RL-MUL (DQN).
    RlMul,
    /// Enhanced RL-MUL-E (parallel A2C).
    RlMulE,
}

impl Method {
    /// All methods in table order.
    pub const ALL: [Method; 5] =
        [Method::Wallace, Method::Gomil, Method::Sa, Method::RlMul, Method::RlMulE];

    /// Table label.
    pub fn label(self) -> &'static str {
        match self {
            Method::Wallace => "Wallace",
            Method::Gomil => "GOMIL",
            Method::Sa => "SA",
            Method::RlMul => "RL-MUL",
            Method::RlMulE => "RL-MUL-E",
        }
    }

    /// Whether the method searches (and therefore depends on the
    /// preference weights and budget).
    pub fn is_search(self) -> bool {
        matches!(self, Method::Sa | Method::RlMul | Method::RlMulE)
    }
}

/// Scaled-down search budgets (the paper trains for 10 000 s; here
/// every method gets the same number of environment steps).
#[derive(Debug, Clone, Copy)]
pub struct Budget {
    /// Environment steps granted to each search method.
    pub env_steps: usize,
    /// A2C worker count (its `env_steps` are split across workers).
    pub n_envs: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for Budget {
    fn default() -> Self {
        Budget { env_steps: 60, n_envs: 4, seed: 1 }
    }
}

/// Optimizes one method under one preference, returning its best
/// structure.
///
/// # Errors
///
/// Propagates tree construction and environment errors.
pub fn optimize(
    method: Method,
    spec: DesignSpec,
    pref: Preference,
    budget: Budget,
) -> Result<CompressorTree, RlMulError> {
    optimize_with_cache(method, spec, pref, budget, &EvalCache::new())
}

/// [`optimize`] on top of a shared evaluation cache, so the search
/// methods of one experiment reuse each other's synthesized states
/// (SA, RL-MUL and RL-MUL-E all walk the same neighborhood of the
/// initial structure). Search methods print a `[pipeline]` line with
/// their evaluation-pipeline counters, which the BENCH logs capture.
///
/// # Errors
///
/// As [`optimize`].
pub fn optimize_with_cache(
    method: Method,
    spec: DesignSpec,
    pref: Preference,
    budget: Budget,
    cache: &EvalCache,
) -> Result<CompressorTree, RlMulError> {
    optimize_instrumented(method, spec, pref, budget, cache, &TelemetrySink::disabled())
}

/// [`optimize_with_cache`] with a telemetry sink threaded into the
/// search method's training hooks, so harness runs emit the same
/// per-episode/per-phase JSONL stream as `rlmul train --telemetry`.
/// The fixed methods (Wallace, GOMIL) construct a single tree and
/// emit nothing.
///
/// # Errors
///
/// As [`optimize`].
pub fn optimize_instrumented(
    method: Method,
    spec: DesignSpec,
    pref: Preference,
    budget: Budget,
    cache: &EvalCache,
    sink: &TelemetrySink,
) -> Result<CompressorTree, RlMulError> {
    let _span = rlmul_obs::global().span("bench.optimize");
    let mut env_cfg = EnvConfig::new(spec.bits, spec.kind);
    env_cfg.weights = pref.weights();
    let hooks = TrainHooks::with_telemetry(sink.clone());
    let report = |label: &str, out: &rlmul_core::OptimizationOutcome| {
        println!(
            "[pipeline] {label} {}b {}: {} synth runs, {}",
            spec.bits,
            spec.kind,
            out.synth_runs,
            out.pipeline.render()
        );
    };
    match method {
        Method::Wallace => Ok(CompressorTree::wallace(spec.bits, spec.kind)?),
        Method::Gomil => Ok(gomil(spec.bits, spec.kind)?),
        Method::Sa => {
            let sa = SaConfig { steps: budget.env_steps, ..Default::default() };
            let out = run_sa_with(&env_cfg, &sa, budget.seed, cache.clone(), &hooks, None)?;
            report(Method::Sa.label(), &out);
            Ok(out.best)
        }
        Method::RlMul => {
            let mut env = MulEnv::with_cache(env_cfg, cache.clone())?;
            let cfg = DqnConfig {
                steps: budget.env_steps,
                warmup: (budget.env_steps / 5).max(4),
                seed: budget.seed,
                ..Default::default()
            };
            let out = train_dqn_with(&mut env, &cfg, &hooks, None)?;
            report(Method::RlMul.label(), &out);
            Ok(out.best)
        }
        Method::RlMulE => {
            let cfg = A2cConfig {
                steps: (budget.env_steps / budget.n_envs).max(2),
                n_envs: budget.n_envs,
                seed: budget.seed,
                ..Default::default()
            };
            let out = train_a2c_with(&env_cfg, &cfg, cache.clone(), &hooks, None)?;
            report(Method::RlMulE.label(), &out);
            Ok(out.best)
        }
    }
}

/// One synthesized point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PpaPoint {
    /// Area, µm².
    pub area: f64,
    /// Delay, ns.
    pub delay: f64,
    /// Power, mW.
    pub power: f64,
}

/// Synthesizes `netlist` at minimum area plus a target-delay sweep
/// (the paper sweeps 0.05–1.2 ns; here the range adapts to the delay
/// model: `[0.55, 1.25] ×` the min-area delay).
///
/// # Errors
///
/// Propagates synthesis errors.
pub fn sweep_netlist(netlist: &Netlist, points: usize) -> Result<Vec<PpaPoint>, RlMulError> {
    let _span = rlmul_obs::global().span("bench.sweep");
    let synth = Synthesizer::nangate45();
    let anchor = synth.run(netlist, &SynthesisOptions::default())?;
    let mut out =
        vec![PpaPoint { area: anchor.area_um2, delay: anchor.delay_ns, power: anchor.power_mw }];
    let reports =
        synth.sweep(netlist, 0.55 * anchor.delay_ns, 1.25 * anchor.delay_ns, points.max(2))?;
    out.extend(reports.into_iter().map(|r| PpaPoint {
        area: r.area_um2,
        delay: r.delay_ns,
        power: r.power_mw,
    }));
    Ok(out)
}

/// Elaborates and sweeps a bare multiplier/MAC design.
///
/// # Errors
///
/// Propagates elaboration and synthesis errors.
pub fn sweep_tree(tree: &CompressorTree, points: usize) -> Result<Vec<PpaPoint>, RlMulError> {
    let netlist = MultiplierNetlist::elaborate(tree)?.into_netlist();
    sweep_netlist(&netlist, points)
}

/// Builds the systolic PE-array netlist wrapping `tree` (Tables II
/// and III).
///
/// # Errors
///
/// Propagates elaboration errors.
pub fn pe_netlist(tree: &CompressorTree, rows: usize, cols: usize) -> Result<Netlist, RlMulError> {
    let style =
        if tree.profile().kind().is_mac() { PeStyle::MergedMac } else { PeStyle::MultiplierAdder };
    Ok(pe_array(tree, PeArrayConfig { rows, cols, style })?)
}

/// Minimum-area point of a sweep.
pub fn pick_min_area(points: &[PpaPoint]) -> PpaPoint {
    *points
        .iter()
        .min_by(|a, b| a.area.partial_cmp(&b.area).expect("finite"))
        .expect("nonempty sweep")
}

/// Minimum-delay point of a sweep.
pub fn pick_min_delay(points: &[PpaPoint]) -> PpaPoint {
    *points
        .iter()
        .min_by(|a, b| a.delay.partial_cmp(&b.delay).expect("finite"))
        .expect("nonempty sweep")
}

/// Balanced point: minimizes normalized area + delay over the sweep.
pub fn pick_trade_off(points: &[PpaPoint]) -> PpaPoint {
    let amin = pick_min_area(points).area.max(1e-12);
    let dmin = pick_min_delay(points).delay.max(1e-12);
    *points
        .iter()
        .min_by(|a, b| {
            let ka = a.area / amin + a.delay / dmin;
            let kb = b.area / amin + b.delay / dmin;
            ka.partial_cmp(&kb).expect("finite")
        })
        .expect("nonempty sweep")
}

/// Picks the row for a preference.
pub fn pick(pref: Preference, points: &[PpaPoint]) -> PpaPoint {
    match pref {
        Preference::Area => pick_min_area(points),
        Preference::Timing => pick_min_delay(points),
        Preference::TradeOff => pick_trade_off(points),
    }
}

/// `(area, delay)` projection of a sweep.
pub fn to_points2(points: &[PpaPoint]) -> Vec<Point2> {
    points.iter().map(|p| Point2::new(p.area, p.delay)).collect()
}

/// Pareto front and hypervolume of a point set against a shared
/// reference (Figs. 9–11 and 14). The reference should dominate-be-
/// dominated-by every method's points; use [`reference_point`] on the
/// union.
pub fn front_and_hv(points: &[Point2], reference: Point2) -> (Vec<Point2>, f64) {
    let front = pareto_front(points);
    let hv = hypervolume_2d(&front, reference);
    (front, hv)
}

/// 5%-padded reference point over a union of point sets.
pub fn reference_point(union: &[Point2]) -> Point2 {
    let mx = union.iter().map(|p| p.x).fold(0.0f64, f64::max);
    let my = union.iter().map(|p| p.y).fold(0.0f64, f64::max);
    Point2::new(1.05 * mx, 1.05 * my)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_extract_the_right_corners() {
        let pts = vec![
            PpaPoint { area: 400.0, delay: 1.0, power: 0.2 },
            PpaPoint { area: 300.0, delay: 1.5, power: 0.15 },
            PpaPoint { area: 500.0, delay: 0.8, power: 0.3 },
        ];
        assert_eq!(pick(Preference::Area, &pts).area, 300.0);
        assert_eq!(pick(Preference::Timing, &pts).delay, 0.8);
        let t = pick(Preference::TradeOff, &pts);
        assert_eq!(t.area, 400.0); // 400/300 + 1.0/0.8 = 2.58, best
    }

    #[test]
    fn wallace_and_gomil_methods_build() {
        let spec = DesignSpec { bits: 4, kind: PpgKind::And };
        for m in [Method::Wallace, Method::Gomil] {
            let t = optimize(m, spec, Preference::Area, Budget::default()).unwrap();
            t.check_legal().unwrap();
        }
    }

    #[test]
    fn sweep_returns_min_area_anchor_plus_targets() {
        let tree = CompressorTree::dadda(4, PpgKind::And).unwrap();
        let pts = sweep_tree(&tree, 4).unwrap();
        assert_eq!(pts.len(), 5);
        let anchor = pts[0];
        assert!(pts.iter().all(|p| p.area >= anchor.area - 1e-9));
    }

    #[test]
    fn reference_point_pads_the_union() {
        let union = vec![Point2::new(100.0, 2.0), Point2::new(50.0, 4.0)];
        let r = reference_point(&union);
        assert!((r.x - 105.0).abs() < 1e-9 && (r.y - 4.2).abs() < 1e-9);
    }
}
