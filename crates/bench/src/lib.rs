//! Experiment harness for the RL-MUL reproduction.
//!
//! One binary per paper table/figure lives in `src/bin/`; this
//! library hosts the shared machinery: a tiny CLI argument parser,
//! aligned text-table and CSV reporting, the method runners (Wallace,
//! Dadda, GOMIL, SA, RL-MUL, RL-MUL-E) and design sweeps, and the
//! CNN operation-count model behind Fig. 1.

#![forbid(unsafe_code)]

pub mod args;
pub mod nets;
pub mod report;
pub mod runner;
pub mod tables;
