//! Aligned text tables and CSV output for the experiment binaries.

use std::fs;
use std::io::Write as _;
use std::path::Path;

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// A table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        TextTable { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends one row (padded/truncated to the header width).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for c in 0..ncols {
                if c > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:width$}", cells[c], width = widths[c]));
            }
            line.trim_end().to_owned()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Writes the table as CSV.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir)?;
        }
        let mut f = fs::File::create(path)?;
        writeln!(f, "{}", self.header.join(","))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join(","))?;
        }
        Ok(())
    }
}

/// Writes arbitrary CSV rows (used for raw point clouds).
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_points_csv(path: &Path, header: &str, rows: &[Vec<f64>]) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir)?;
    }
    let mut f = fs::File::create(path)?;
    writeln!(f, "{header}")?;
    for row in rows {
        let cells: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
        writeln!(f, "{}", cells.join(","))?;
    }
    Ok(())
}

/// Default output directory for experiment artifacts.
pub fn results_dir() -> std::path::PathBuf {
    std::path::PathBuf::from("results")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(["method", "area"]);
        t.row(["wallace", "427"]);
        t.row(["rl-mul-e", "388"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("method"));
        assert!(lines[2].starts_with("wallace"));
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new(["a", "b", "c"]);
        t.row(["1"]);
        assert!(t.render().contains('1'));
    }
}
