//! Operation counting for classic CNNs (paper Fig. 1: ratio of MAC
//! computations to all operations in standard networks).
//!
//! Layer shapes follow the original publications; counts are
//! per-inference at the canonical input resolution.

/// One layer's operation counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpCounts {
    /// Multiply-accumulate operations.
    pub macs: u64,
    /// Non-MAC operations (activations, pooling comparisons,
    /// normalization arithmetic, element-wise additions).
    pub other: u64,
}

impl OpCounts {
    /// MAC share of all operations.
    pub fn mac_ratio(&self) -> f64 {
        self.macs as f64 / (self.macs + self.other) as f64
    }
}

fn conv(cin: u64, cout: u64, k: u64, oh: u64, ow: u64) -> (u64, u64) {
    // MACs = k²·cin·cout·oh·ow; other ≈ bias add + activation per output.
    (k * k * cin * cout * oh * ow, 2 * cout * oh * ow)
}

fn fc(cin: u64, cout: u64) -> (u64, u64) {
    (cin * cout, 2 * cout)
}

fn pool(c: u64, oh: u64, ow: u64, k: u64) -> (u64, u64) {
    (0, c * oh * ow * k * k)
}

/// A named network with its op totals.
#[derive(Debug, Clone)]
pub struct NetworkOps {
    /// Network name.
    pub name: &'static str,
    /// Aggregated counts.
    pub counts: OpCounts,
}

/// Op counts for the four reference networks of Fig. 1.
pub fn reference_networks() -> Vec<NetworkOps> {
    let mut nets = Vec::new();

    // AlexNet (224×224×3).
    let mut m = 0u64;
    let mut o = 0u64;
    for (cin, cout, k, oh, ow) in [
        (3u64, 96u64, 11u64, 55u64, 55u64),
        (96, 256, 5, 27, 27),
        (256, 384, 3, 13, 13),
        (384, 384, 3, 13, 13),
        (384, 256, 3, 13, 13),
    ] {
        let (mm, oo) = conv(cin, cout, k, oh, ow);
        m += mm;
        o += oo;
    }
    for (c, oh, ow) in [(96u64, 27u64, 27u64), (256, 13, 13), (256, 6, 6)] {
        let (_, oo) = pool(c, oh, ow, 3);
        o += oo;
    }
    for (cin, cout) in [(256u64 * 36, 4096u64), (4096, 4096), (4096, 1000)] {
        let (mm, oo) = fc(cin, cout);
        m += mm;
        o += oo;
    }
    nets.push(NetworkOps { name: "AlexNet", counts: OpCounts { macs: m, other: o } });

    // VGG-16 (224×224×3).
    let mut m = 0u64;
    let mut o = 0u64;
    let cfg: [(u64, u64, u64); 13] = [
        (3, 64, 224),
        (64, 64, 224),
        (64, 128, 112),
        (128, 128, 112),
        (128, 256, 56),
        (256, 256, 56),
        (256, 256, 56),
        (256, 512, 28),
        (512, 512, 28),
        (512, 512, 28),
        (512, 512, 14),
        (512, 512, 14),
        (512, 512, 14),
    ];
    for (cin, cout, hw) in cfg {
        let (mm, oo) = conv(cin, cout, 3, hw, hw);
        m += mm;
        o += oo;
    }
    for (c, hw) in [(64u64, 112u64), (128, 56), (256, 28), (512, 14), (512, 7)] {
        let (_, oo) = pool(c, hw, hw, 2);
        o += oo;
    }
    for (cin, cout) in [(512u64 * 49, 4096u64), (4096, 4096), (4096, 1000)] {
        let (mm, oo) = fc(cin, cout);
        m += mm;
        o += oo;
    }
    nets.push(NetworkOps { name: "VGG-16", counts: OpCounts { macs: m, other: o } });

    // ResNet-18 (224×224×3).
    let mut m = 0u64;
    let mut o = 0u64;
    let (mm, oo) = conv(3, 64, 7, 112, 112);
    m += mm;
    o += oo;
    let stages: [(u64, u64, u64); 4] = [(64, 64, 56), (64, 128, 28), (128, 256, 14), (256, 512, 7)];
    for (i, (cin, cout, hw)) in stages.into_iter().enumerate() {
        for block in 0..2u64 {
            let first_in = if block == 0 { cin } else { cout };
            let (mm, oo) = conv(first_in, cout, 3, hw, hw);
            m += mm;
            o += oo;
            let (mm, oo) = conv(cout, cout, 3, hw, hw);
            m += mm;
            o += oo;
            if block == 0 && i > 0 {
                let (mm, oo) = conv(cin, cout, 1, hw, hw);
                m += mm;
                o += oo;
            }
            o += cout * hw * hw; // residual addition
        }
    }
    let (mm, oo) = fc(512, 1000);
    m += mm;
    o += oo;
    nets.push(NetworkOps { name: "ResNet-18", counts: OpCounts { macs: m, other: o } });

    // MobileNetV1 (224×224×3): depthwise-separable stacks.
    let mut m = 0u64;
    let mut o = 0u64;
    let (mm, oo) = conv(3, 32, 3, 112, 112);
    m += mm;
    o += oo;
    let ds: [(u64, u64, u64); 13] = [
        (32, 64, 112),
        (64, 128, 56),
        (128, 128, 56),
        (128, 256, 28),
        (256, 256, 28),
        (256, 512, 14),
        (512, 512, 14),
        (512, 512, 14),
        (512, 512, 14),
        (512, 512, 14),
        (512, 512, 14),
        (512, 1024, 7),
        (1024, 1024, 7),
    ];
    for (cin, cout, hw) in ds {
        // Depthwise 3×3 on cin channels, then pointwise 1×1.
        let (mm1, oo1) = conv(1, cin, 3, hw, hw);
        let (mm2, oo2) = conv(cin, cout, 1, hw, hw);
        m += mm1 + mm2;
        o += oo1 + oo2;
    }
    let (mm, oo) = fc(1024, 1000);
    m += mm;
    o += oo;
    nets.push(NetworkOps { name: "MobileNetV1", counts: OpCounts { macs: m, other: o } });

    nets
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_ratios_exceed_97_percent() {
        // Fig. 1's point: MACs dominate standard CNNs.
        for net in reference_networks() {
            let r = net.counts.mac_ratio();
            assert!(r > 0.97, "{}: ratio {r}", net.name);
            assert!(r < 1.0);
        }
    }

    #[test]
    fn vgg_has_the_most_macs() {
        let nets = reference_networks();
        let vgg = nets.iter().find(|n| n.name == "VGG-16").unwrap();
        for n in &nets {
            assert!(vgg.counts.macs >= n.counts.macs, "{}", n.name);
        }
        // VGG-16 is famously ≈ 15.5 GMACs.
        assert!((10e9..20e9).contains(&(vgg.counts.macs as f64)));
    }
}
