//! A minimal `--key value` command-line parser (keeps the harness
//! free of extra dependencies).

use std::collections::HashMap;

/// Parsed command-line arguments.
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses `std::env::args()`: `--key value` pairs and bare
    /// `--flag`s.
    pub fn parse() -> Self {
        Self::from_tokens(std::env::args().skip(1))
    }

    /// Parses an explicit token stream (for tests).
    pub fn from_tokens<I: IntoIterator<Item = String>>(iter: I) -> Self {
        let tokens: Vec<String> = iter.into_iter().collect();
        let mut values = HashMap::new();
        let mut flags = Vec::new();
        let mut i = 0;
        while i < tokens.len() {
            let t = &tokens[i];
            if let Some(key) = t.strip_prefix("--") {
                if i + 1 < tokens.len() && !tokens[i + 1].starts_with("--") {
                    values.insert(key.to_owned(), tokens[i + 1].clone());
                    i += 2;
                    continue;
                }
                flags.push(key.to_owned());
            }
            i += 1;
        }
        Args { values, flags }
    }

    /// Typed lookup with a default.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.values.get(key).and_then(|v| v.parse().ok()).unwrap_or(default)
    }

    /// String lookup with a default.
    pub fn get_str(&self, key: &str, default: &str) -> String {
        self.values.get(key).cloned().unwrap_or_else(|| default.to_owned())
    }

    /// Whether a bare `--flag` was passed.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_pairs_and_flags() {
        let a = Args::from_tokens(["--steps", "50", "--fast", "--bits", "16"].map(String::from));
        assert_eq!(a.get("steps", 0usize), 50);
        assert_eq!(a.get("bits", 8usize), 16);
        assert!(a.flag("fast"));
        assert!(!a.flag("slow"));
        assert_eq!(a.get("missing", 7u32), 7);
    }
}
