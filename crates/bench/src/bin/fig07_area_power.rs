//! Fig. 7 — correlation between area and power of multiplier
//! structures (the justification for the objective-space reduction of
//! Section IV-B).
//!
//! Random legal compressor-tree structures are sampled by masked
//! random walks from the Wallace initial state; each is synthesized
//! at minimum area and the (area, power) pairs are grouped into area
//! bins whose power quartiles reproduce the paper's box plots.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rlmul_bench::args::Args;
use rlmul_bench::report::{results_dir, write_points_csv, TextTable};
use rlmul_ct::{CompressorTree, PpgKind};
use rlmul_rtl::MultiplierNetlist;
use rlmul_synth::{estimate_power, Library, MappedNetlist, SynthesisOptions, Synthesizer};

fn quartiles(sorted: &[f64]) -> (f64, f64, f64, f64, f64) {
    let q = |f: f64| sorted[((sorted.len() - 1) as f64 * f).round() as usize];
    (sorted[0], q(0.25), q(0.5), q(0.75), sorted[sorted.len() - 1])
}

fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let cov: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let vx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    let vy: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
    cov / (vx.sqrt() * vy.sqrt()).max(1e-12)
}

fn main() {
    let args = Args::parse();
    let samples: usize = args.get("samples", 120);
    let walk: usize = args.get("walk", 60);
    let seed: u64 = args.get("seed", 7);

    println!("Fig. 7 — area/power correlation of random multiplier structures\n");
    for bits in [8usize, 16] {
        let mut rng = StdRng::seed_from_u64(seed ^ bits as u64);
        let synth = Synthesizer::nangate45();
        let library = Library::nangate45();
        let mut pts: Vec<(f64, f64)> = Vec::with_capacity(samples);
        for i in 0..samples {
            // Diversify starting structures and walk lengths so the
            // sample covers a wide area range, like the paper's
            // search-time archive.
            let mut tree = match i % 3 {
                0 => CompressorTree::wallace(bits, PpgKind::And),
                1 => CompressorTree::dadda(bits, PpgKind::And),
                _ => rlmul_baselines::gomil(bits, PpgKind::And),
            }
            .expect("legal width");
            for _ in 0..rng.gen_range(1..=walk) {
                let actions = tree.valid_actions();
                let a = actions[rng.gen_range(0..actions.len())];
                tree = tree.apply_action(a).expect("valid action applies");
            }
            let nl = MultiplierNetlist::elaborate(&tree).expect("elaborates").into_netlist();
            let r = synth.run(&nl, &SynthesisOptions::default()).expect("synthesizes");
            // Power at a fixed 1 GHz operating point: the paper
            // compares designs under common constraints, so the
            // frequency term must not differ across samples.
            let mapped = MappedNetlist::map(&nl, &library);
            let p = estimate_power(&mapped, 1.0);
            pts.push((r.area_um2, p.total_mw()));
        }
        let xs: Vec<f64> = pts.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pts.iter().map(|p| p.1).collect();
        let r = pearson(&xs, &ys);
        println!("{bits}-bit AND-based: {} samples, Pearson r = {r:.3}", pts.len());

        // Area bins → power box statistics.
        let amin = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let amax = xs.iter().cloned().fold(0.0f64, f64::max);
        let bins = 5usize;
        let mut table = TextTable::new([
            "area bin (um^2)",
            "n",
            "power min",
            "q1",
            "median",
            "q3",
            "power max",
        ]);
        for b in 0..bins {
            let lo = amin + (amax - amin) * b as f64 / bins as f64;
            let hi = amin + (amax - amin) * (b + 1) as f64 / bins as f64;
            let mut powers: Vec<f64> = pts
                .iter()
                .filter(|p| p.0 >= lo && (p.0 < hi || b == bins - 1))
                .map(|p| p.1)
                .collect();
            if powers.is_empty() {
                continue;
            }
            powers.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let (mn, q1, med, q3, mx) = quartiles(&powers);
            table.row([
                format!("{lo:.0}-{hi:.0}"),
                powers.len().to_string(),
                format!("{mn:.4}"),
                format!("{q1:.4}"),
                format!("{med:.4}"),
                format!("{q3:.4}"),
                format!("{mx:.4}"),
            ]);
        }
        print!("{}", table.render());
        let rows: Vec<Vec<f64>> = pts.iter().map(|p| vec![p.0, p.1]).collect();
        let path = results_dir().join(format!("fig07_area_power_{bits}b.csv"));
        if write_points_csv(&path, "area_um2,power_mw", &rows).is_ok() {
            println!("wrote {}\n", path.display());
        }
        assert!(r > 0.7, "paper claims a strong positive correlation; got r = {r}");
    }
    println!("Paper claim: strong positive area/power correlation justifies");
    println!("dropping the power term from the reward (Eq. 9 → Eq. 20).");
}
