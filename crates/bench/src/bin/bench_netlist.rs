//! Netlist-pipeline benchmark: full-rebuild vs incremental
//! elaborate→lint→map→size→STA step latency over identical action
//! walks at 8/16/32/64 bits, with per-step allocation counts (from a
//! counting global allocator) and the obs span-profiler breakdown.
//! Asserts the two paths produce bit-identical PPA at every step and
//! writes `results/BENCH_netlist.json`.
//!
//! Run in release: debug builds re-run the full pipeline inside the
//! incremental path as an oracle, which is the very cost being
//! measured. `--ci-gate` runs the 16-bit comparison only and exits
//! non-zero if the incremental path drops below 3x the full rebuild.

use rlmul_bench::report::results_dir;
use rlmul_ct::{CompressorTree, PpgKind};
use rlmul_rtl::{lint, lint_delta, IncrementalMultiplier, MultiplierNetlist};
use rlmul_synth::{IncrementalSynthesis, SynthesisOptions, SynthesisReport, Synthesizer};
use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Allocation-counting wrapper around the system allocator. The obs
/// crate forbids `unsafe`, so the counter lives here in the binary.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

struct Json(String);

impl Json {
    fn new() -> Self {
        Json(String::from("{\n"))
    }
    fn field(&mut self, key: &str, value: f64) {
        writeln!(self.0, "  \"{key}\": {value:.6},").expect("write to string");
    }
    fn finish(mut self) -> String {
        let cut = self.0.trim_end().trim_end_matches(',').len();
        self.0.truncate(cut);
        self.0.push_str("\n}\n");
        self.0
    }
}

/// A deterministic walk of `steps` legal actions from `tree`.
fn walk(tree: &CompressorTree, steps: usize) -> Vec<CompressorTree> {
    let mut seed = 0x9e3779b97f4a7c15u64 ^ tree.bits() as u64;
    let mut cur = tree.clone();
    let mut out = Vec::with_capacity(steps);
    for _ in 0..steps {
        let actions = cur.valid_actions();
        if actions.is_empty() {
            break;
        }
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        cur = cur.apply_action(actions[(seed >> 33) as usize % actions.len()]).expect("legal");
        out.push(cur.clone());
    }
    out
}

/// Measured cost of one pipeline mode over a walk.
struct ModeCost {
    /// Median per-step wall time — robust against scheduler hiccups,
    /// which matter at sub-millisecond step costs.
    secs_per_step: f64,
    allocs_per_step: f64,
    reports: Vec<Vec<SynthesisReport>>,
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

fn run_full(states: &[CompressorTree], options: &[SynthesisOptions]) -> ModeCost {
    let obs = rlmul_obs::global();
    let synth = Synthesizer::nangate45();
    let mut reports = Vec::with_capacity(states.len());
    let mut step_secs = Vec::with_capacity(states.len());
    let a0 = ALLOCS.load(Ordering::Relaxed);
    for tree in states {
        let _s = obs.span("bench.full_step");
        let t0 = Instant::now();
        let netlist = {
            let _e = obs.span("bench.full_elaborate");
            MultiplierNetlist::elaborate(tree).expect("elaborates").into_netlist()
        };
        let report = {
            let _l = obs.span("bench.full_lint");
            lint(&netlist)
        };
        assert_eq!(report.errors(), 0, "lint gate: {}", report.render());
        reports.push({
            let _y = obs.span("bench.full_synth");
            synth.run_many(&netlist, options).expect("synthesizes")
        });
        step_secs.push(t0.elapsed().as_secs_f64());
    }
    let allocs = ALLOCS.load(Ordering::Relaxed) - a0;
    ModeCost {
        secs_per_step: median(step_secs),
        allocs_per_step: allocs as f64 / states.len() as f64,
        reports,
    }
}

fn run_incremental(
    initial: &CompressorTree,
    states: &[CompressorTree],
    options: &[SynthesisOptions],
) -> ModeCost {
    let obs = rlmul_obs::global();
    let mut mul = IncrementalMultiplier::new(initial).expect("elaborates");
    let mut synth = IncrementalSynthesis::nangate45();
    // Prime the session: the first run is necessarily a full one (it
    // builds the connectivity table and STA baseline the later steps
    // patch). Steady-state step cost is what the loop below measures.
    synth.run_many(mul.netlist(), options).expect("synthesizes");
    let mut reports = Vec::with_capacity(states.len());
    let mut step_secs = Vec::with_capacity(states.len());
    let a0 = ALLOCS.load(Ordering::Relaxed);
    for tree in states {
        let _s = obs.span("bench.inc_step");
        let t0 = Instant::now();
        {
            let _r = obs.span("bench.retarget");
            mul.retarget(tree).expect("retargets");
        }
        let report = {
            let _l = obs.span("bench.lint_delta");
            lint_delta(mul.arena(), mul.last_delta())
        };
        assert_eq!(report.errors(), 0, "delta lint gate: {}", report.render());
        reports.push(synth.run_many(mul.netlist(), options).expect("synthesizes"));
        step_secs.push(t0.elapsed().as_secs_f64());
    }
    let allocs = ALLOCS.load(Ordering::Relaxed) - a0;
    ModeCost {
        secs_per_step: median(step_secs),
        allocs_per_step: allocs as f64 / states.len() as f64,
        reports,
    }
}

/// Bit-exact PPA comparison between the two pipelines — the external
/// synthesis numbers must not drift by even one ULP.
fn assert_bit_identical(full: &ModeCost, inc: &ModeCost, bits: usize) {
    assert_eq!(full.reports.len(), inc.reports.len());
    for (step, (f, i)) in full.reports.iter().zip(&inc.reports).enumerate() {
        assert_eq!(f.len(), i.len());
        for (rf, ri) in f.iter().zip(i) {
            assert_eq!(
                rf.area_um2.to_bits(),
                ri.area_um2.to_bits(),
                "{bits}-bit step {step}: area diverged ({} vs {})",
                rf.area_um2,
                ri.area_um2
            );
            assert_eq!(rf.delay_ns.to_bits(), ri.delay_ns.to_bits(), "{bits}-bit step {step}");
            assert_eq!(rf.power_mw.to_bits(), ri.power_mw.to_bits(), "{bits}-bit step {step}");
            assert_eq!(rf.met_target, ri.met_target, "{bits}-bit step {step}");
            assert_eq!(rf.sizing_moves, ri.sizing_moves, "{bits}-bit step {step}");
        }
    }
}

fn bench_width(bits: usize, steps: usize, json: &mut Json) -> f64 {
    let tree = CompressorTree::wallace(bits, PpgKind::And).expect("legal");
    let states = walk(&tree, steps);
    assert!(!states.is_empty(), "no legal actions at {bits} bits");

    // Four delay targets derived from a min-area anchor, mirroring
    // the RL environment's constraint setup.
    let netlist = MultiplierNetlist::elaborate(&tree).expect("elaborates").into_netlist();
    let anchor = Synthesizer::nangate45()
        .run(&netlist, &SynthesisOptions::default())
        .expect("anchor synthesizes");
    let options: Vec<SynthesisOptions> = [0.7, 0.85, 1.0, 1.15]
        .iter()
        .map(|m| SynthesisOptions { target_delay_ns: Some(m * anchor.delay_ns), max_upsizes: 800 })
        .collect();

    let before = rlmul_obs::global().span_stats();
    let full = run_full(&states, &options);
    let inc = run_incremental(&tree, &states, &options);
    let inc_spans = rlmul_obs::global().span_stats_since(&before);
    assert_bit_identical(&full, &inc, bits);

    let speedup = full.secs_per_step / inc.secs_per_step;
    println!(
        "{bits:>2}-bit ({} steps): full {:8.2} ms/step ({:9.0} allocs) | inc {:8.2} ms/step \
         ({:9.0} allocs) | {speedup:5.2}x, {:.1} steps/s",
        states.len(),
        full.secs_per_step * 1e3,
        full.allocs_per_step,
        inc.secs_per_step * 1e3,
        inc.allocs_per_step,
        1.0 / inc.secs_per_step
    );
    json.field(&format!("full_step_ms_{bits}"), full.secs_per_step * 1e3);
    json.field(&format!("inc_step_ms_{bits}"), inc.secs_per_step * 1e3);
    json.field(&format!("full_steps_per_sec_{bits}"), 1.0 / full.secs_per_step);
    json.field(&format!("inc_steps_per_sec_{bits}"), 1.0 / inc.secs_per_step);
    json.field(&format!("full_allocs_per_step_{bits}"), full.allocs_per_step);
    json.field(&format!("inc_allocs_per_step_{bits}"), inc.allocs_per_step);
    json.field(&format!("speedup_{bits}"), speedup);
    print!("{}", rlmul_obs::render_span_tree(&inc_spans));
    speedup
}

fn main() {
    let ci_gate = std::env::args().any(|a| a == "--ci-gate");
    if cfg!(debug_assertions) {
        eprintln!(
            "warning: debug build — the incremental path re-runs the full pipeline as an \
             oracle, so speedups are meaningless here"
        );
    }
    // The global registry is gated off by default; the profiler
    // breakdown below needs it recording.
    rlmul_obs::global().enable();

    let widths: &[(usize, usize)] =
        if ci_gate { &[(16, 24)] } else { &[(8, 24), (16, 24), (32, 12), (64, 8)] };
    // The gate measures wall time on whatever runner CI hands us, so a
    // borderline miss can be scheduler noise rather than a regression.
    // Retry up to three times in gate mode: noise passes on a later
    // attempt, a real regression fails all three.
    let attempts = if ci_gate && !cfg!(debug_assertions) { 3 } else { 1 };
    let mut json = Json::new();
    let mut speedup_16 = f64::NAN;
    for attempt in 0..attempts {
        json = Json::new();
        speedup_16 = f64::NAN;
        for &(bits, steps) in widths {
            let s = bench_width(bits, steps, &mut json);
            if bits == 16 {
                speedup_16 = s;
            }
        }
        if speedup_16.is_nan() || speedup_16 >= 3.0 {
            break;
        }
        if attempt + 1 < attempts {
            eprintln!(
                "16-bit speedup {speedup_16:.2}x below the 3x gate; retrying \
                 (attempt {}/{attempts})",
                attempt + 2
            );
        }
    }

    // Span-profiler breakdown (flamegraph-collapsed stacks next to
    // the JSON so `inferno`/`flamegraph.pl` can render the two step
    // kinds side by side).
    let obs = rlmul_obs::global();
    let stats = obs.span_stats();
    print!("{}", rlmul_obs::render_span_tree(&stats));
    std::fs::create_dir_all(results_dir()).expect("results dir");
    let flame_path = results_dir().join("BENCH_netlist_flame.txt");
    std::fs::write(&flame_path, rlmul_obs::collapsed_from(&stats)).expect("write flame stacks");

    let path = results_dir().join("BENCH_netlist.json");
    std::fs::write(&path, json.finish()).expect("write BENCH_netlist.json");
    println!("wrote {} and {}", path.display(), flame_path.display());

    if ci_gate && !cfg!(debug_assertions) {
        assert!(
            speedup_16 >= 3.0,
            "incremental pipeline regressed below 3x at 16 bits: {speedup_16:.2}x"
        );
        println!("ci-gate OK: 16-bit incremental speedup {speedup_16:.2}x >= 3x");
    }
}
