//! Fig. 13 — an illustration of the hypervolume indicator: the area
//! enclosed by a Pareto front and a reference point (larger is
//! better for minimization fronts).

use rlmul_pareto::{hypervolume_2d, pareto_front, Point2};

fn main() {
    println!("Fig. 13 — hypervolume illustration\n");
    let cloud = vec![
        Point2::new(390.0, 0.78),
        Point2::new(410.0, 0.74),
        Point2::new(430.0, 0.72),
        Point2::new(450.0, 0.80), // dominated
        Point2::new(505.0, 0.70),
        Point2::new(420.0, 0.76), // dominated
    ];
    let reference = Point2::new(560.0, 0.90);
    let front = pareto_front(&cloud);
    println!("design points (area um^2, delay ns):");
    for p in &cloud {
        let tag = if front.contains(p) { "front" } else { "dominated" };
        println!("  ({:6.1}, {:.2})  {tag}", p.x, p.y);
    }
    let hv = hypervolume_2d(&front, reference);
    println!("\nreference point: ({}, {})", reference.x, reference.y);
    println!("hypervolume enclosed by the front: {hv:.2}");

    // A better front strictly grows the hypervolume.
    let improved: Vec<Point2> = front.iter().map(|p| Point2::new(p.x - 20.0, p.y - 0.02)).collect();
    let hv2 = hypervolume_2d(&improved, reference);
    println!("after dominating every front point:  {hv2:.2} (larger is better)");
    assert!(hv2 > hv);
}
