//! Table III and Fig. 11 — merged-MAC designs and MAC-implemented PE
//! arrays: the addend is fused into the compressor tree
//! (Section III-C) and the same five methods compete.

use rlmul_bench::args::Args;
use rlmul_bench::runner::{Budget, DesignSpec, Method, Preference};
use rlmul_bench::tables::run_comparison;
use rlmul_ct::PpgKind;

fn main() {
    let args = Args::parse();
    let budget = Budget {
        env_steps: args.get("steps", 40),
        n_envs: args.get("envs", 4),
        seed: args.get("seed", 3),
    };
    let pe: usize = args.get("pe", 8);
    let sweep_points: usize = args.get("points", 6);
    let only_bits: usize = args.get("bits", 0);
    let with_pe = !args.flag("no-pe");

    println!("Table III — MAC and PE-array (MAC) area and timing comparison\n");
    for bits in [8usize, 16] {
        if only_bits != 0 && bits != only_bits {
            continue;
        }
        let spec = DesignSpec { bits, kind: PpgKind::MacAnd };
        let t0 = std::time::Instant::now();
        let data = run_comparison(spec, budget, sweep_points, None).expect("comparison completes");
        println!("{}", data.render(&format!("== {bits}-bit MAC ==")));
        println!("Fig. 14(c) hypervolumes (MAC):");
        println!("{}", data.render_hypervolumes());
        if let Ok(p) = data.write_fronts(&format!("fig11_pareto_mac_{bits}b")) {
            println!("fronts → {}", p.display());
        }
        if let (Some(w), Some(e)) = (
            data.cell(Method::Wallace, Preference::Area),
            data.cell(Method::RlMulE, Preference::Area),
        ) {
            println!(
                "MAC area reduction vs Wallace (Area pref): {:.1}%",
                100.0 * (1.0 - e.area / w.area)
            );
        }
        println!("[{:.1?}]\n", t0.elapsed());

        if with_pe {
            let t0 = std::time::Instant::now();
            let data = run_comparison(spec, budget, sweep_points.min(4), Some((pe, pe)))
                .expect("comparison completes");
            println!(
                "{}",
                data.render(&format!("== {bits}-bit MAC-implemented {pe}×{pe} PE array =="))
            );
            println!("Fig. 14(c) hypervolumes (PE-MAC):");
            println!("{}", data.render_hypervolumes());
            if let Ok(p) = data.write_fronts(&format!("fig11_pareto_pemac_{bits}b")) {
                println!("fronts → {}", p.display());
            }
            println!("[{:.1?}]\n", t0.elapsed());
        }
    }
}
