//! Trace-layer overhead benchmark and CI gate.
//!
//! Per-job tracing sits on the driver hot path unconditionally (every
//! `TrainHooks::report_progress`, every cache lookup), so a disabled
//! `TraceCtx` must cost one `Option` branch and nothing else. This
//! bench measures, against an uninstrumented xorshift baseline:
//!
//! * the disabled emit path (the contract under guard);
//! * the enabled emit path while the bounded buffer accepts events;
//! * the enabled emit path after the buffer is full (drop-newest);
//! * one `render_event` JSON line (the `/events` stream unit cost).
//!
//! Everything lands in `results/BENCH_trace.json`. `--ci-gate`
//! asserts the disabled-emit/baseline ratio stays under 2x — the same
//! bound the obs `overhead` bench enforces for counters and spans —
//! and exits non-zero on a regression.
//!
//! ```sh
//! cargo run --release -p rlmul-bench --bin bench_trace
//! cargo run --release -p rlmul-bench --bin bench_trace -- --ci-gate
//! ```

use rlmul_bench::args::Args;
use rlmul_bench::report::results_dir;
use rlmul_obs::{TraceCtx, TraceEvent};
use rlmul_serve::render_event;
use std::hint::black_box;
use std::time::Instant;

/// A few-ns xorshift workload per iteration — matches the obs
/// overhead bench so the ratios are comparable across BENCH files.
#[inline]
fn workload(mut x: u64) -> u64 {
    for _ in 0..8 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
    }
    x
}

/// Median nanoseconds per iteration of `f` over `rounds` timed
/// batches of `iters` calls each.
fn median_ns_per_iter<F: FnMut() -> u64>(mut f: F, rounds: usize, iters: u64) -> f64 {
    let mut samples: Vec<f64> = (0..rounds)
        .map(|_| {
            let start = Instant::now();
            let mut acc = 0u64;
            for _ in 0..iters {
                acc = acc.wrapping_add(f());
            }
            black_box(acc);
            start.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn main() -> std::process::ExitCode {
    let args = Args::parse();
    let ci_gate = args.flag("ci-gate");
    let rounds: usize = args.get("rounds", 15);
    let iters: u64 = args.get("iters", 400_000);

    let mut x = 0x9e37_79b9_7f4a_7c15u64;
    let baseline = median_ns_per_iter(
        || {
            x = workload(black_box(x));
            x
        },
        rounds,
        iters,
    );

    let disabled = TraceCtx::disabled();
    let mut y = 0x9e37_79b9_7f4a_7c15u64;
    let disabled_emit = median_ns_per_iter(
        || {
            y = workload(black_box(y));
            disabled.emit("bench", "step");
            y
        },
        rounds,
        iters,
    );

    // Enabled, buffer accepting: allocate a capacity large enough
    // that the whole measurement records (worst honest cost).
    let recording = TraceCtx::with_capacity("tr-bench.0", (rounds as u64 * iters) as usize + 16);
    let mut z = 0x9e37_79b9_7f4a_7c15u64;
    let enabled_emit = median_ns_per_iter(
        || {
            z = workload(black_box(z));
            recording.emit("bench", "step");
            z
        },
        rounds,
        iters,
    );

    // Enabled, buffer full: the drop-newest path (count + return).
    let full = TraceCtx::with_capacity("tr-bench.1", 4);
    for _ in 0..8 {
        full.emit("fill", "fill");
    }
    let mut w = 0x9e37_79b9_7f4a_7c15u64;
    let dropping_emit = median_ns_per_iter(
        || {
            w = workload(black_box(w));
            full.emit("bench", "step");
            w
        },
        rounds,
        iters,
    );

    // One stream line render (amortized over fewer iters — it
    // allocates a String per call).
    let event = TraceEvent {
        seq: 42,
        micros: 1_234_567,
        kind: "cache_hit".into(),
        detail: "context=00ff00ff00ff00ff".into(),
    };
    let render = median_ns_per_iter(
        || {
            let line = render_event("tr-00000007.0", black_box(&event));
            line.len() as u64
        },
        rounds,
        iters / 100,
    );

    let ratio = disabled_emit / baseline.max(0.1);
    let body = format!(
        "{{\"bench\":\"trace\",\"rounds\":{rounds},\"iters\":{iters},\
         \"baseline_ns\":{baseline:.3},\"disabled_emit_ns\":{disabled_emit:.3},\
         \"enabled_emit_ns\":{enabled_emit:.3},\"dropping_emit_ns\":{dropping_emit:.3},\
         \"render_event_ns\":{render:.3},\"disabled_ratio\":{ratio:.3},\
         \"gate_bound\":2.0}}"
    );
    println!("{body}");
    if let Err(e) = std::fs::create_dir_all(results_dir()) {
        eprintln!("bench_trace: cannot create results dir: {e}");
        return std::process::ExitCode::FAILURE;
    }
    let out = results_dir().join("BENCH_trace.json");
    if let Err(e) = std::fs::write(&out, &body) {
        eprintln!("bench_trace: cannot write {}: {e}", out.display());
        return std::process::ExitCode::FAILURE;
    }
    eprintln!("bench_trace: wrote {}", out.display());

    if ci_gate {
        if ratio >= 2.0 {
            eprintln!(
                "bench_trace: CI gate FAILED — disabled emit {disabled_emit:.2} ns/iter vs \
                 baseline {baseline:.2} ns/iter ({ratio:.2}x, bound 2.0x)"
            );
            return std::process::ExitCode::FAILURE;
        }
        eprintln!(
            "bench_trace: CI gate passed — disabled emit within {ratio:.2}x of baseline \
             (bound 2.0x)"
        );
    }
    std::process::ExitCode::SUCCESS
}
