//! Fig. 1 — ratio of MAC computations in standard neural networks.
//!
//! Reproduces the paper's motivation figure from an analytic
//! operation-count model of four classic CNNs.

use rlmul_bench::nets::reference_networks;
use rlmul_bench::report::{results_dir, TextTable};

fn main() {
    let mut table = TextTable::new(["network", "MACs (G)", "other ops (M)", "MAC ratio (%)"]);
    for net in reference_networks() {
        table.row([
            net.name.to_owned(),
            format!("{:.2}", net.counts.macs as f64 / 1e9),
            format!("{:.1}", net.counts.other as f64 / 1e6),
            format!("{:.2}", 100.0 * net.counts.mac_ratio()),
        ]);
    }
    println!("Fig. 1 — MAC computation ratios in standard neural networks\n");
    print!("{}", table.render());
    let path = results_dir().join("fig01_mac_ratios.csv");
    if table.write_csv(&path).is_ok() {
        println!("\nwrote {}", path.display());
    }
    println!("\nPaper claim: MAC operations constitute over 99% of operations in");
    println!("standard deep neural networks; the model reproduces ratios ≥ 97%.");
}
