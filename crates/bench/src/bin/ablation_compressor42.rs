//! Ablation: 4:2 compressor trees vs the paper's 3:2/2:2 trees — the
//! `K = 3` extension the paper names as future work (Section III-B).
//!
//! Compares a Wallace-style 4:2 reduction (dedicated COMP42 cells,
//! ripple-free same-stage cout chains) against the Wallace, Dadda and
//! GOMIL 3:2/2:2 structures on synthesized PPA.

use rlmul_baselines::gomil;
use rlmul_bench::report::TextTable;
use rlmul_ct::{CompressorTree, PpProfile, PpgKind, QuadSchedule};
use rlmul_rtl::{quad_multiplier, AdderKind, MultiplierNetlist};
use rlmul_synth::{SynthesisOptions, Synthesizer};

fn main() {
    let synth = Synthesizer::nangate45();
    println!("Ablation — 4:2 compressor trees (K = 3 extension)\n");
    let mut table =
        TextTable::new(["bits", "tree", "stages", "area (um^2)", "delay (ns)", "power (mW)"]);
    for bits in [8usize, 16, 32] {
        let profile = PpProfile::new(bits, PpgKind::And).expect("legal width");
        let quad_sched = QuadSchedule::build(&profile).expect("converges");
        let quad = quad_multiplier(bits, PpgKind::And, AdderKind::default()).expect("builds");
        let rq = synth.run(&quad, &SynthesisOptions::default()).expect("synthesizes");
        table.row([
            bits.to_string(),
            "4:2 wallace".to_owned(),
            quad_sched.stage_count().to_string(),
            format!("{:.0}", rq.area_um2),
            format!("{:.4}", rq.delay_ns),
            format!("{:.3}", rq.power_mw),
        ]);
        for (name, tree) in [
            ("wallace", CompressorTree::wallace(bits, PpgKind::And).expect("legal")),
            ("dadda", CompressorTree::dadda(bits, PpgKind::And).expect("legal")),
            ("gomil", gomil(bits, PpgKind::And).expect("legal")),
        ] {
            let st = tree.stage_count().expect("assignable");
            let nl = MultiplierNetlist::elaborate(&tree).expect("elaborates").into_netlist();
            let r = synth.run(&nl, &SynthesisOptions::default()).expect("synthesizes");
            table.row([
                bits.to_string(),
                name.to_owned(),
                st.to_string(),
                format!("{:.0}", r.area_um2),
                format!("{:.4}", r.delay_ns),
                format!("{:.3}", r.power_mw),
            ]);
        }
    }
    print!("{}", table.render());
    println!("\nThe 4:2 tree reaches two rows in roughly half the stages; its");
    println!("dense COMP42 cells trade a little area for the shallower depth,");
    println!("which pays off increasingly at wider operand sizes.");
}
