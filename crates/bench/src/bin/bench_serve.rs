//! Job-server load benchmark: starts an in-process `rlmul serve`
//! daemon, hammers it with the `rlmul loadtest` client harness over
//! the real wire protocol, and writes throughput plus p50/p95/p99
//! latency to `results/BENCH_serve.json`.
//!
//! The numbers answer the operator questions DESIGN.md §16 raises:
//! how many small jobs per second one daemon sustains, what a submit
//! or status round trip costs under concurrent load, and whether the
//! cancel path keeps up. `--ci-gate` runs a small configuration and
//! exits non-zero if any client saw an error or any submitted job
//! failed to reach a terminal state — a functional smoke gate, not a
//! performance one, so it stays robust on shared CI machines.
//!
//! ```sh
//! cargo run --release -p rlmul-bench --bin bench_serve
//! cargo run -p rlmul-bench --bin bench_serve -- --ci-gate
//! ```

use rlmul_bench::args::Args;
use rlmul_bench::report::results_dir;
use rlmul_serve::{run_loadtest, LoadtestConfig, ServeConfig, Server};

fn main() -> std::process::ExitCode {
    let args = Args::parse();
    let ci_gate = args.flag("ci-gate");
    let cfg = LoadtestConfig {
        addr: String::new(), // filled in once the daemon is up
        clients: args.get("clients", if ci_gate { 2 } else { 8 }),
        jobs_per_client: args.get("jobs", if ci_gate { 3 } else { 12 }),
        bits: args.get("bits", 4),
        steps: args.get("steps", if ci_gate { 3 } else { 6 }),
        cancel_every: args.get("cancel-every", 3),
        ..Default::default()
    };

    let state = std::env::temp_dir().join(format!("rlmul-bench-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&state);
    let server = match Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        dir: state.clone(),
        workers: args.get("workers", 2),
        http_workers: 2,
    }) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bench_serve: cannot start daemon: {e}");
            return std::process::ExitCode::FAILURE;
        }
    };
    let cfg = LoadtestConfig { addr: server.local_addr().to_string(), ..cfg };
    eprintln!(
        "bench_serve: {} clients x {} jobs ({} steps each) against {}",
        cfg.clients, cfg.jobs_per_client, cfg.steps, cfg.addr
    );

    let report = match run_loadtest(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench_serve: harness failed: {e}");
            server.shutdown();
            return std::process::ExitCode::FAILURE;
        }
    };
    server.shutdown();
    let _ = std::fs::remove_dir_all(&state);

    let body = report.render_json(&cfg);
    println!("{body}");
    let out = results_dir().join("BENCH_serve.json");
    if let Err(e) = std::fs::create_dir_all(results_dir()) {
        eprintln!("bench_serve: cannot create results dir: {e}");
        return std::process::ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(&out, &body) {
        eprintln!("bench_serve: cannot write {}: {e}", out.display());
        return std::process::ExitCode::FAILURE;
    }
    eprintln!("bench_serve: wrote {}", out.display());

    let expected = cfg.clients * cfg.jobs_per_client;
    let terminal = report.done + report.cancelled + report.failed;
    if ci_gate {
        let ok = report.errors == 0
            && report.failed == 0
            && report.submitted == expected
            && terminal == expected;
        if !ok {
            eprintln!(
                "bench_serve: CI gate FAILED (submitted {}/{expected}, terminal {terminal}, \
                 failed {}, errors {})",
                report.submitted, report.failed, report.errors
            );
            return std::process::ExitCode::FAILURE;
        }
        eprintln!("bench_serve: CI gate passed ({terminal}/{expected} jobs terminal, 0 errors)");
    }
    std::process::ExitCode::SUCCESS
}
