//! Ablation: objective-space reduction (paper Section IV-B).
//!
//! Compares searches driven by the full three-term cost of Eq. 9
//! (`w_p > 0`) against the reduced area+delay cost of Eq. 20. Because
//! power tracks area (Fig. 7), the reduced objective should find
//! designs whose *power* is nevertheless competitive — the paper's
//! justification for dropping the term.

use rlmul_baselines::SaConfig;
use rlmul_bench::args::Args;
use rlmul_bench::report::TextTable;
use rlmul_core::{run_sa, CostWeights, EnvConfig};
use rlmul_ct::PpgKind;
use rlmul_rtl::MultiplierNetlist;
use rlmul_synth::{SynthesisOptions, Synthesizer};

fn main() {
    let args = Args::parse();
    let steps: usize = args.get("steps", 120);
    let bits: usize = args.get("bits", 8);
    let seeds: u64 = args.get("seeds", 3);

    println!("Ablation — reward objective reduction (Eq. 9 vs Eq. 20)");
    println!("{bits}-bit AND, SA search, {steps} steps, {seeds} seeds\n");
    let synth = Synthesizer::nangate45();
    let mut table =
        TextTable::new(["objective", "mean area (um^2)", "mean delay (ns)", "mean power (mW)"]);
    for (label, weights) in [
        ("reduced (w_p = 0)", CostWeights::TRADE_OFF),
        ("full (w_p = 0.5)", CostWeights { power: 0.5, ..CostWeights::TRADE_OFF }),
    ] {
        let (mut sa_area, mut sa_delay, mut sa_power) = (0.0, 0.0, 0.0);
        for seed in 0..seeds {
            let mut cfg = EnvConfig::new(bits, PpgKind::And);
            cfg.weights = weights;
            let out = run_sa(&cfg, &SaConfig { steps, ..Default::default() }, seed)
                .expect("sa completes");
            let nl = MultiplierNetlist::elaborate(&out.best).expect("elaborates").into_netlist();
            let r = synth.run(&nl, &SynthesisOptions::default()).expect("synthesizes");
            sa_area += r.area_um2 / seeds as f64;
            sa_delay += r.delay_ns / seeds as f64;
            sa_power += r.power_mw / seeds as f64;
        }
        table.row([
            label.to_owned(),
            format!("{sa_area:.0}"),
            format!("{sa_delay:.4}"),
            format!("{sa_power:.4}"),
        ]);
    }
    print!("{}", table.render());
    println!("\nPaper claim: because power and area correlate strongly, the");
    println!("reduced objective loses essentially nothing in power while");
    println!("needing one fewer weight to tune.");
}
