//! Table I and Fig. 9 — multiplier area/timing comparison across
//! Wallace, GOMIL, SA, RL-MUL and RL-MUL-E for 8/16-bit AND- and
//! MBE-based designs, plus the per-method Pareto fronts.
//!
//! Budgets are scaled down from the paper's 10 000 s of training;
//! raise `--steps` for tighter results. `--bits 8` / `--kind and`
//! restrict the configuration set. `--telemetry PATH` streams a
//! JSONL event log of every search method's episodes and phase
//! timings (summarize with `rlmul report PATH`).

use rlmul_bench::args::Args;
use rlmul_bench::runner::{Budget, DesignSpec, Method, Preference};
use rlmul_bench::tables::run_comparison_instrumented;
use rlmul_ct::PpgKind;
use rlmul_telemetry::{TelemetrySink, TelemetryWriter};

fn main() {
    let args = Args::parse();
    let budget = Budget {
        env_steps: args.get("steps", 60),
        n_envs: args.get("envs", 4),
        seed: args.get("seed", 1),
    };
    let sweep_points: usize = args.get("points", 10);
    let only_bits: usize = args.get("bits", 0);
    let only_kind = args.get_str("kind", "");
    let telemetry_path = args.get_str("telemetry", "");
    let (writer, sink) = if telemetry_path.is_empty() {
        (None, TelemetrySink::disabled())
    } else {
        let (w, s) = TelemetryWriter::create(&telemetry_path).expect("telemetry file opens");
        (Some(w), s)
    };

    let mut configs: Vec<DesignSpec> = Vec::new();
    for bits in [8usize, 16] {
        for kind in [PpgKind::And, PpgKind::Mbe] {
            if only_bits != 0 && bits != only_bits {
                continue;
            }
            if !only_kind.is_empty() && kind.label() != only_kind {
                continue;
            }
            configs.push(DesignSpec { bits, kind });
        }
    }

    println!("Table I — multiplier area and timing comparison");
    println!("(budget: {} env steps per search method)\n", budget.env_steps);
    for spec in configs {
        let t0 = std::time::Instant::now();
        let data = run_comparison_instrumented(spec, budget, sweep_points, None, &sink)
            .expect("comparison completes");
        let title = format!("== {}-bit {} ==", spec.bits, spec.kind.label().to_uppercase());
        println!("{}", data.render(&title));
        println!("Fig. 14(a) hypervolumes:");
        println!("{}", data.render_hypervolumes());
        let stem = format!("fig09_pareto_mul_{}b_{}", spec.bits, spec.kind.label());
        if let Ok(p) = data.write_fronts(&stem) {
            println!("fronts → {}", p.display());
        }
        // Paper-style claims.
        if let (Some(w), Some(e)) = (
            data.cell(Method::Wallace, Preference::Area),
            data.cell(Method::RlMulE, Preference::Area),
        ) {
            println!(
                "area reduction vs Wallace (Area pref): {:.1}%",
                100.0 * (1.0 - e.area / w.area)
            );
        }
        if let (Some(w), Some(e)) = (
            data.cell(Method::Wallace, Preference::Timing),
            data.cell(Method::RlMulE, Preference::Timing),
        ) {
            println!(
                "delay reduction vs Wallace (Timing pref): {:.1}%",
                100.0 * (1.0 - e.delay / w.delay)
            );
        }
        println!("[{:.1?}]\n", t0.elapsed());
    }
    drop(sink);
    if let Some(w) = writer {
        let dropped = w.dropped();
        w.close().expect("telemetry file flushes");
        println!("telemetry → {telemetry_path} ({dropped} events dropped)");
    }
}
