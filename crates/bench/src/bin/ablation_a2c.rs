//! Ablation: the RL-MUL-E efficiency mechanisms (paper Section IV-A)
//! — synchronized parallel workers and multi-step returns.
//!
//! Sweeps the worker count `n` and the bootstrap horizon `k` at a
//! fixed *total* environment-step budget and reports the mean best
//! cost across seeds, isolating the contribution of each mechanism.

use rlmul_bench::args::Args;
use rlmul_bench::report::TextTable;
use rlmul_core::{train_a2c, A2cConfig, EnvConfig};
use rlmul_ct::PpgKind;

fn main() {
    let args = Args::parse();
    let total_steps: usize = args.get("steps", 80);
    let seeds: u64 = args.get("seeds", 3);
    let bits: usize = args.get("bits", 8);

    println!("Ablation — A2C workers and n-step returns");
    println!("{bits}-bit AND, {total_steps} total env steps, {seeds} seeds\n");
    let env_cfg = EnvConfig::new(bits, PpgKind::And);
    let mut table = TextTable::new(["workers", "n-step", "mean best cost", "mean final cost"]);
    for n_envs in [1usize, 2, 4] {
        for n_step in [1usize, 5] {
            let mut best = 0.0;
            let mut fin = 0.0;
            for seed in 0..seeds {
                let cfg = A2cConfig {
                    steps: (total_steps / n_envs).max(2),
                    n_envs,
                    n_step,
                    seed,
                    ..Default::default()
                };
                let out = train_a2c(&env_cfg, &cfg).expect("a2c completes");
                best += out.best_cost / seeds as f64;
                fin += out.trajectory.last().copied().unwrap_or(f64::NAN) / seeds as f64;
            }
            table.row([
                n_envs.to_string(),
                n_step.to_string(),
                format!("{best:.3}"),
                format!("{fin:.3}"),
            ]);
        }
    }
    print!("{}", table.render());
    println!("\nPaper claim: multiple synchronized workers with a five-step");
    println!("return train faster and more stably than a single worker.");
}
