//! Ablation: final carry-propagate adder architecture.
//!
//! The compressor tree hands two rows to a CPA; its architecture
//! shifts where the critical path lives and how much area the CT
//! optimization can recover. This harness compares Brent–Kung (the
//! default), Kogge–Stone and ripple-carry for Dadda multipliers.

use rlmul_bench::report::TextTable;
use rlmul_ct::{CompressorTree, PpgKind};
use rlmul_rtl::{AdderKind, MultiplierNetlist};
use rlmul_synth::{SynthesisOptions, Synthesizer};

fn main() {
    let synth = Synthesizer::nangate45();
    println!("Ablation — final CPA architecture (Dadda trees, min-area synthesis)\n");
    let mut table =
        TextTable::new(["bits", "adder", "area (um^2)", "delay (ns)", "power (mW)", "gates"]);
    for bits in [8usize, 16, 32] {
        let tree = CompressorTree::dadda(bits, PpgKind::And).expect("legal width");
        for (name, kind) in [
            ("brent-kung", AdderKind::BrentKung),
            ("kogge-stone", AdderKind::KoggeStone),
            ("ripple", AdderKind::RippleCarry),
        ] {
            let nl = MultiplierNetlist::elaborate_with_adder(&tree, kind)
                .expect("elaborates")
                .into_netlist();
            let r = synth.run(&nl, &SynthesisOptions::default()).expect("synthesizes");
            table.row([
                bits.to_string(),
                name.to_owned(),
                format!("{:.0}", r.area_um2),
                format!("{:.4}", r.delay_ns),
                format!("{:.3}", r.power_mw),
                r.num_cells.to_string(),
            ]);
        }
    }
    print!("{}", table.render());
    println!("\nExpected shape: Kogge–Stone is fastest and largest; ripple is");
    println!("smallest and slowest; Brent–Kung sits between on both axes,");
    println!("which is why it is the default CPA for the reproduction.");
}
