//! Table II and Fig. 10 — PE arrays built from each method's
//! multipliers: the optimized designs are instantiated in a systolic
//! array (multiplier + accumulate-adder per PE) and the whole array
//! is synthesized.
//!
//! Array size defaults to 8×8 (`--pe 8`); the paper does not state
//! its size, and the per-PE critical path — the quantity Tables II
//! reports — is size-independent.

use rlmul_bench::args::Args;
use rlmul_bench::runner::{Budget, DesignSpec, Method, Preference};
use rlmul_bench::tables::run_comparison;
use rlmul_ct::PpgKind;

fn main() {
    let args = Args::parse();
    let budget = Budget {
        env_steps: args.get("steps", 40),
        n_envs: args.get("envs", 4),
        seed: args.get("seed", 2),
    };
    let pe: usize = args.get("pe", 8);
    let sweep_points: usize = args.get("points", 5);
    let only_bits: usize = args.get("bits", 0);
    let only_kind = args.get_str("kind", "");

    println!("Table II — PE array (multiplier) area and timing comparison");
    println!("({}×{} weight-stationary systolic array)\n", pe, pe);
    for bits in [8usize, 16] {
        for kind in [PpgKind::And, PpgKind::Mbe] {
            if only_bits != 0 && bits != only_bits {
                continue;
            }
            if !only_kind.is_empty() && kind.label() != only_kind {
                continue;
            }
            let spec = DesignSpec { bits, kind };
            let t0 = std::time::Instant::now();
            let data = run_comparison(spec, budget, sweep_points, Some((pe, pe)))
                .expect("comparison completes");
            let title = format!("== {}-bit {} PE array ==", bits, kind.label().to_uppercase());
            println!("{}", data.render(&title));
            println!("Fig. 14(b) hypervolumes:");
            println!("{}", data.render_hypervolumes());
            let stem = format!("fig10_pareto_pe_{}b_{}", bits, kind.label());
            if let Ok(p) = data.write_fronts(&stem) {
                println!("fronts → {}", p.display());
            }
            if let (Some(w), Some(e)) = (
                data.cell(Method::Wallace, Preference::Area),
                data.cell(Method::RlMulE, Preference::Area),
            ) {
                println!(
                    "array area reduction vs Wallace (Area pref): {:.1}%",
                    100.0 * (1.0 - e.area / w.area)
                );
            }
            println!("[{:.1?}]\n", t0.elapsed());
        }
    }
}
