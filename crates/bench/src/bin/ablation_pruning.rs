//! Ablation: search-space pruning on reduction depth
//! (paper Section IV-C).
//!
//! Runs the same SA search budget with and without the stage-count
//! action mask and compares the best cost reached and the depth of
//! the states visited. Pruning should reach equal-or-better cost by
//! not wasting evaluations on deep (slow) structures.

use rlmul_baselines::SaConfig;
use rlmul_bench::args::Args;
use rlmul_bench::report::TextTable;
use rlmul_core::{run_sa, train_dqn, DqnConfig, EnvConfig, MulEnv, StagePruning};
use rlmul_ct::PpgKind;

fn main() {
    let args = Args::parse();
    let steps: usize = args.get("steps", 60);
    let seeds: u64 = args.get("seeds", 3);
    let bits: usize = args.get("bits", 8);

    println!("Ablation — stage pruning (Section IV-C), {bits}-bit AND, {steps} steps\n");
    let mut table = TextTable::new(["search", "pruning", "mean best cost", "mean final stages"]);
    for (label, pruning) in [("auto", StagePruning::Auto), ("off", StagePruning::Off)] {
        for method in ["SA", "RL-MUL"] {
            let mut costs = Vec::new();
            let mut stages = Vec::new();
            for seed in 0..seeds {
                let mut cfg = EnvConfig::new(bits, PpgKind::And);
                cfg.pruning = pruning;
                let out = match method {
                    "SA" => run_sa(&cfg, &SaConfig { steps, ..Default::default() }, seed)
                        .expect("sa completes"),
                    _ => {
                        let mut env = MulEnv::new(cfg).expect("env builds");
                        train_dqn(
                            &mut env,
                            &DqnConfig { steps, warmup: steps / 5, seed, ..Default::default() },
                        )
                        .expect("dqn completes")
                    }
                };
                costs.push(out.best_cost);
                stages.push(out.best.stage_count().expect("assignable") as f64);
            }
            let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
            table.row([
                method.to_owned(),
                label.to_owned(),
                format!("{:.3}", mean(&costs)),
                format!("{:.1}", mean(&stages)),
            ]);
        }
    }
    print!("{}", table.render());
    println!("\nPaper claim: constraining actions that inflate the stage count");
    println!("focuses the search on shallow (fast) structures.");
}
