//! Fig. 8 — correlation between compressor-tree stage count and the
//! area/delay of 8-bit AND-based multipliers (the justification for
//! the stage-pruning strategy of Section IV-C).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rlmul_bench::args::Args;
use rlmul_bench::report::{results_dir, write_points_csv, TextTable};
use rlmul_ct::{CompressorTree, PpgKind};
use rlmul_rtl::MultiplierNetlist;
use rlmul_synth::{SynthesisOptions, Synthesizer};
use std::collections::BTreeMap;

fn main() {
    let args = Args::parse();
    let bits: usize = args.get("bits", 8);
    let samples: usize = args.get("samples", 150);
    let seed: u64 = args.get("seed", 11);

    let mut rng = StdRng::seed_from_u64(seed);
    let synth = Synthesizer::nangate45();
    // Sample structures with a spread of depths: random walks without
    // stage pruning naturally drift deeper.
    let mut by_stage: BTreeMap<usize, Vec<(f64, f64)>> = BTreeMap::new();
    let mut raw: Vec<Vec<f64>> = Vec::new();
    for i in 0..samples {
        let mut tree = CompressorTree::wallace(bits, PpgKind::And).expect("legal width");
        let steps = (i % 40) + 1;
        for _ in 0..steps {
            let actions = tree.valid_actions();
            let a = actions[rng.gen_range(0..actions.len())];
            tree = tree.apply_action(a).expect("valid action applies");
        }
        let stages = tree.stage_count().expect("assignable");
        let nl = MultiplierNetlist::elaborate(&tree).expect("elaborates").into_netlist();
        let r = synth.run(&nl, &SynthesisOptions::default()).expect("synthesizes");
        // Area under a shared timing constraint: deeper trees need
        // more upsizing, surfacing the paper's area/stage trend.
        let sized = synth.run(&nl, &SynthesisOptions::with_target(1.1)).expect("synthesizes");
        by_stage.entry(stages).or_default().push((sized.area_um2, r.delay_ns));
        raw.push(vec![stages as f64, sized.area_um2, r.delay_ns]);
    }

    println!("Fig. 8 — stage count vs area/delay ({bits}-bit AND-based)\n");
    let mut table =
        TextTable::new(["stages", "n", "mean area @1.1ns (um^2)", "mean min-area delay (ns)"]);
    let mut means: Vec<(usize, f64, f64)> = Vec::new();
    for (stages, pts) in &by_stage {
        let n = pts.len() as f64;
        let ma = pts.iter().map(|p| p.0).sum::<f64>() / n;
        let md = pts.iter().map(|p| p.1).sum::<f64>() / n;
        means.push((*stages, ma, md));
        table.row([
            stages.to_string(),
            pts.len().to_string(),
            format!("{ma:.1}"),
            format!("{md:.4}"),
        ]);
    }
    print!("{}", table.render());
    let path = results_dir().join(format!("fig08_stage_corr_{bits}b.csv"));
    if write_points_csv(&path, "stages,area_um2,delay_ns", &raw).is_ok() {
        println!("wrote {}", path.display());
    }

    // Shape check: delay should rise with stage count across the
    // populated groups (compare shallowest vs deepest with ≥ 3
    // samples).
    let populated: Vec<&(usize, f64, f64)> =
        means.iter().filter(|(s, _, _)| by_stage[s].len() >= 3).collect();
    if populated.len() >= 2 {
        let first = populated.first().expect("nonempty");
        let last = populated.last().expect("nonempty");
        println!(
            "\ndelay: {} stages → {:.3} ns, {} stages → {:.3} ns",
            first.0, first.2, last.0, last.2
        );
        assert!(
            last.2 > first.2,
            "paper claims deeper trees are slower; got {:.3} vs {:.3}",
            last.2,
            first.2
        );
    }
    println!("\nPaper claim: stage count rises with area and delay, motivating");
    println!("the action pruning that bounds reduction depth (Section IV-C).");
}
