//! Dense-kernel benchmark: kernel throughput, speedup over the
//! retained naive seed kernels at the paper's state-tensor shape, and
//! per-step agent-update cost for both RL methods. Writes
//! `results/BENCH_nn.json` so future changes have a perf trajectory
//! to compare against.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rlmul_bench::report::results_dir;
use rlmul_core::{train_a2c, train_dqn, A2cConfig, DqnConfig, EnvConfig, MulEnv, NnStats};
use rlmul_ct::PpgKind;
use rlmul_nn::{gemm, reference, Conv2d, Layer, Tensor, TrunkConfig};
use std::fmt::Write as _;
use std::time::Instant;

/// Median-of-runs seconds per iteration of `f`.
fn time_per_iter<F: FnMut()>(iters: usize, mut f: F) -> f64 {
    // Warm-up.
    f();
    let mut runs: Vec<f64> = (0..5)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..iters {
                f();
            }
            t0.elapsed().as_secs_f64() / iters as f64
        })
        .collect();
    runs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    runs[runs.len() / 2]
}

struct Json(String);

impl Json {
    fn new() -> Self {
        Json(String::from("{\n"))
    }
    fn field(&mut self, key: &str, value: f64) {
        writeln!(self.0, "  \"{key}\": {value:.6},").expect("write to string");
    }
    fn finish(mut self) -> String {
        // Drop the trailing comma and close the object.
        let cut = self.0.trim_end().trim_end_matches(',').len();
        self.0.truncate(cut);
        self.0.push_str("\n}\n");
        self.0
    }
}

fn main() {
    let mut json = Json::new();
    let mut rng = StdRng::seed_from_u64(42);

    // Raw GEMM throughput at a head-sized shape.
    let (m, k, n) = (32usize, 256usize, 128usize);
    let a: Vec<f32> = (0..m * k).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let b: Vec<f32> = (0..k * n).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let mut c = vec![0.0f32; m * n];
    let secs = time_per_iter(50, || {
        c.fill(0.0);
        gemm::gemm_nn(&a, &b, &mut c, m, k, n);
    });
    let gemm_gflops = 2.0 * (m * k * n) as f64 / secs / 1e9;
    println!("gemm_nn {m}x{k}x{n}: {gemm_gflops:.2} GFLOP/s");
    json.field("gemm_nn_gflops", gemm_gflops);

    // Conv2d forward+backward at the paper's state-tensor shape
    // [4, 2, 16, 16] (an A2C batch over four workers), optimized GEMM
    // path vs the naive seed kernels.
    let (bn, ic, oc, kk, h, w) = (4usize, 2usize, 16usize, 3usize, 16usize, 16usize);
    let mut conv = Conv2d::new(ic, oc, kk, 1, 1, &mut rng);
    let x = Tensor::kaiming(&[bn, ic, h, w], ic * kk * kk, &mut rng);
    let opt_secs = time_per_iter(200, || {
        let y = conv.forward(&x, true);
        conv.backward(&y);
    });
    let weight: Vec<f32> = (0..oc * ic * kk * kk).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let bias = vec![0.1f32; oc];
    let naive_secs = time_per_iter(20, || {
        let y = reference::conv2d_forward(x.data(), &weight, &bias, bn, ic, h, w, oc, kk, 1, 1);
        let mut dw = vec![0.0f32; weight.len()];
        let mut db = vec![0.0f32; oc];
        reference::conv2d_backward(
            x.data(),
            &y,
            &weight,
            &mut dw,
            &mut db,
            bn,
            ic,
            h,
            w,
            oc,
            kk,
            1,
            1,
        );
    });
    let speedup = naive_secs / opt_secs;
    println!(
        "conv fwd+bwd [4,2,16,16]: optimized {:.1} µs vs naive {:.1} µs ({speedup:.1}x)",
        opt_secs * 1e6,
        naive_secs * 1e6
    );
    json.field("conv_fwd_bwd_paper_shape_us", opt_secs * 1e6);
    json.field("conv_fwd_bwd_naive_us", naive_secs * 1e6);
    json.field("conv_fwd_bwd_speedup", speedup);

    // Per-step agent-update cost: short end-to-end training runs on
    // the 4-bit design; the pipeline's NnStats isolates dense-kernel
    // time from synthesis.
    let trunk = TrunkConfig { in_channels: 2, channels: vec![8, 16], blocks_per_stage: 1 };
    let dqn_cfg = DqnConfig { steps: 16, warmup: 4, trunk: trunk.clone(), ..Default::default() };
    let mut env = MulEnv::new(EnvConfig::new(4, PpgKind::And)).expect("env builds");
    let t0 = Instant::now();
    let out = train_dqn(&mut env, &dqn_cfg).expect("dqn trains");
    let dqn_wall = t0.elapsed().as_secs_f64();
    report_agent("dqn", &mut json, out.pipeline.nn, dqn_cfg.steps, dqn_wall);

    let a2c_cfg = A2cConfig { steps: 8, n_envs: 2, n_step: 3, trunk, ..Default::default() };
    let t0 = Instant::now();
    let out = train_a2c(&EnvConfig::new(4, PpgKind::And), &a2c_cfg).expect("a2c trains");
    let a2c_wall = t0.elapsed().as_secs_f64();
    report_agent("a2c", &mut json, out.pipeline.nn, a2c_cfg.steps, a2c_wall);

    let path = results_dir().join("BENCH_nn.json");
    std::fs::create_dir_all(results_dir()).expect("results dir");
    std::fs::write(&path, json.finish()).expect("write BENCH_nn.json");
    println!("wrote {}", path.display());
}

fn report_agent(label: &str, json: &mut Json, nn: NnStats, steps: usize, wall: f64) {
    let per_step_ms = nn.nanos as f64 / 1e6 / steps as f64;
    println!(
        "{label}: {} over {steps} env steps ({per_step_ms:.2} nn ms/step, {wall:.2} s total)",
        nn.render()
    );
    json.field(&format!("{label}_nn_gflops"), nn.gflops_per_sec());
    json.field(&format!("{label}_nn_ms_per_step"), per_step_ms);
    json.field(&format!("{label}_wall_s"), wall);
}
