//! Fig. 14 — Pareto-front hypervolume comparison: (a) multipliers,
//! (b) multiplier PE arrays, (c) MACs. Prints each method's
//! hypervolume plus the paper's two headline ratios (RL-MUL vs GOMIL
//! and RL-MUL-E vs RL-MUL).
//!
//! The default covers panels (a) and (c) at 8 bits; pass `--pe` to
//! add panel (b) and `--bits 16` for the wide configs.

use rlmul_bench::args::Args;
use rlmul_bench::report::{results_dir, write_points_csv};
use rlmul_bench::runner::{Budget, DesignSpec, Method};
use rlmul_bench::tables::run_comparison;
use rlmul_ct::PpgKind;

type Panel = (String, DesignSpec, Option<(usize, usize)>);

fn main() {
    let args = Args::parse();
    let budget = Budget {
        env_steps: args.get("steps", 40),
        n_envs: args.get("envs", 4),
        seed: args.get("seed", 4),
    };
    let bits: usize = args.get("bits", 8);
    let points: usize = args.get("points", 8);
    let with_pe = args.flag("pe");
    let pe: usize = args.get("pe-size", 8);

    println!("Fig. 14 — hypervolume comparison ({bits}-bit)\n");
    let mut csv: Vec<Vec<f64>> = Vec::new();
    let mut panels: Vec<Panel> = vec![
        ("(a) multiplier AND".into(), DesignSpec { bits, kind: PpgKind::And }, None),
        ("(a) multiplier MBE".into(), DesignSpec { bits, kind: PpgKind::Mbe }, None),
        ("(c) MAC".into(), DesignSpec { bits, kind: PpgKind::MacAnd }, None),
    ];
    if with_pe {
        panels.push((
            "(b) PE array (mul AND)".into(),
            DesignSpec { bits, kind: PpgKind::And },
            Some((pe, pe)),
        ));
    }

    for (pidx, (label, spec, pe_cfg)) in panels.into_iter().enumerate() {
        let data = run_comparison(spec, budget, points, pe_cfg).expect("comparison completes");
        println!("== {label} ==");
        println!("{}", data.render_hypervolumes());
        let gomil = data.hypervolume(Method::Gomil);
        let rl = data.hypervolume(Method::RlMul);
        let rle = data.hypervolume(Method::RlMulE);
        println!(
            "RL-MUL vs GOMIL: {:+.1}%   RL-MUL-E vs RL-MUL: {:+.1}%\n",
            100.0 * (rl / gomil - 1.0),
            100.0 * (rle / rl - 1.0)
        );
        for (m, hv) in &data.hypervolumes {
            csv.push(vec![pidx as f64, *m as usize as f64, *hv]);
        }
    }
    let path = results_dir().join(format!("fig14_hypervolume_{bits}b.csv"));
    if write_points_csv(&path, "panel,method_index,hypervolume", &csv).is_ok() {
        println!("wrote {}", path.display());
    }
    println!("\nPaper claim: RL-MUL beats GOMIL by a large hypervolume margin");
    println!("(avg +85.9% for multipliers) and RL-MUL-E adds ≈ +8–11% on top.");
}
