//! Surrogate-evaluator benchmark: SA search over the table-1
//! multiplier configs with the online learned surrogate off vs on,
//! same seed and step budget. Reports real synthesis-pipeline calls
//! and the final Pareto-front hypervolume for both runs and writes
//! `results/BENCH_surrogate.json`.
//!
//! The claim under test: screening proposals through the surrogate
//! cuts real synthesis calls by >= 3x at iso quality. The headline
//! metric is the *iso-quality call reduction*: the synthesis calls
//! the surrogate-off runs need before their pooled front reaches the
//! on runs' final hypervolume, divided by the on runs' calls. It
//! charges the surrogate for any front quality it gives up and
//! credits it when off never catches up. `--ci-gate` runs the 8-bit
//! config only and exits non-zero below a 2x iso reduction.

use rlmul_baselines::SaConfig;
use rlmul_bench::args::Args;
use rlmul_bench::report::results_dir;
use rlmul_bench::runner::{front_and_hv, reference_point};
use rlmul_core::{run_sa, EnvConfig, OptimizationOutcome};
use rlmul_ct::PpgKind;
use rlmul_pareto::Point2;
use std::fmt::Write as _;

struct Json(String);

impl Json {
    fn new() -> Self {
        Json(String::from("{\n"))
    }
    fn field(&mut self, key: &str, value: f64) {
        writeln!(self.0, "  \"{key}\": {value:.6},").expect("write to string");
    }
    fn finish(mut self) -> String {
        let cut = self.0.trim_end().trim_end_matches(',').len();
        self.0.truncate(cut);
        self.0.push_str("\n}\n");
        self.0
    }
}

struct RunResult {
    synthesis_calls: usize,
    screened: usize,
    forced: usize,
    hv_points: Vec<Point2>,
    best_cost: f64,
}

#[derive(Clone, Copy)]
struct Knobs {
    margin: f64,
    accept_floor: f64,
    slack: f64,
    verify_top: usize,
    hidden: usize,
    train_per_observe: usize,
    initial_temp: f64,
    cooling: f64,
}

fn run(bits: usize, steps: usize, seed: u64, surrogate: bool, k: Knobs) -> RunResult {
    let mut env_cfg = EnvConfig::new(bits, PpgKind::And);
    env_cfg.surrogate.enabled = surrogate;
    env_cfg.surrogate.sa_margin = k.margin;
    env_cfg.surrogate.sa_accept_floor = k.accept_floor;
    env_cfg.surrogate.guard_slack = k.slack;
    env_cfg.surrogate.verify_top = k.verify_top;
    env_cfg.surrogate.hidden = k.hidden;
    env_cfg.surrogate.train_per_observe = k.train_per_observe;
    let sa_cfg =
        SaConfig { steps, initial_temp: k.initial_temp, cooling: k.cooling, ..Default::default() };
    let out: OptimizationOutcome = run_sa(&env_cfg, &sa_cfg, seed).expect("sa run completes");
    RunResult {
        synthesis_calls: out.pipeline.synthesis_calls,
        screened: out.pipeline.surrogate_screened,
        forced: out.pipeline.surrogate_forced_evals,
        hv_points: out.pareto_points.iter().map(|&(a, d)| Point2::new(a, d)).collect(),
        best_cost: out.best_cost,
    }
}

/// Synthesis calls the surrogate-off run needs before its front
/// reaches `target` hypervolume. The off run's point stream is in
/// evaluation (push) order and the run is deterministic, so the
/// prefix of length `n` is exactly the front a shorter run would
/// have accumulated after the proportional share of its synthesis
/// calls. Prefix hypervolume is monotone in the prefix length, so a
/// binary search finds the threshold. `None` when even the full run
/// falls short of `target`.
fn calls_to_match(off: &RunResult, target: f64, reference: Point2) -> Option<f64> {
    let pts = &off.hv_points;
    let hv_at = |n: usize| front_and_hv(&pts[..n], reference).1;
    if pts.is_empty() || hv_at(pts.len()) < target {
        return None;
    }
    let (mut lo, mut hi) = (1usize, pts.len());
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if hv_at(mid) >= target {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    Some(lo as f64 / pts.len() as f64 * off.synthesis_calls as f64)
}

/// Off-vs-on comparison at one width, aggregated over `repeats`
/// seeds: a single SA run's front is high-variance (the surrogate
/// run walks a genuinely different trajectory), so the modes are
/// compared as methods — pooled fronts and summed synthesis calls.
/// Returns `(call_ratio, hv_off, hv_on)`.
fn bench_width(
    bits: usize,
    steps: usize,
    on_steps: usize,
    seed: u64,
    repeats: usize,
    knobs: Knobs,
    json: &mut Json,
) -> (f64, f64, f64) {
    let (mut calls_off, mut calls_on) = (0usize, 0usize);
    let (mut screened, mut forced) = (0usize, 0usize);
    let (mut best_off, mut best_on) = (f64::INFINITY, f64::INFINITY);
    let mut needed_off = 0.0f64;
    let mut all_matched = true;
    let (mut off_pool, mut on_pool) = (Vec::new(), Vec::new());
    for rep in 0..repeats {
        let s = seed + rep as u64;
        let off = run(bits, steps, s, false, knobs);
        let on = run(bits, on_steps, s, true, knobs);
        // Per-seed iso-quality cost: synthesis calls this seed's off
        // run burns before its front is as good as the same seed's
        // surrogate run final front. Same-seed runs share the walk
        // until the first screened proposal, so the comparison is a
        // paired one. When off never catches up, it is charged its
        // full budget (a lower bound on the true cost).
        let union: Vec<Point2> = off.hv_points.iter().chain(&on.hv_points).copied().collect();
        let reference = reference_point(&union);
        let (_, hv_on_s) = front_and_hv(&on.hv_points, reference);
        if std::env::var_os("BENCH_SURROGATE_PER_SEED").is_some() {
            let (_, hv_off_s) = front_and_hv(&off.hv_points, reference);
            println!(
                "  seed {s}: off {:4} calls hv {hv_off_s:9.1} | on {:4} calls hv {hv_on_s:9.1}",
                off.synthesis_calls, on.synthesis_calls,
            );
        }
        match calls_to_match(&off, hv_on_s, reference) {
            Some(calls) => needed_off += calls,
            None => {
                needed_off += off.synthesis_calls as f64;
                all_matched = false;
            }
        }
        calls_off += off.synthesis_calls;
        calls_on += on.synthesis_calls;
        screened += on.screened;
        forced += on.forced;
        best_off = best_off.min(off.best_cost);
        best_on = best_on.min(on.best_cost);
        off_pool.extend(off.hv_points);
        on_pool.extend(on.hv_points);
    }

    // Pooled hypervolumes against a shared reference over the union —
    // the two methods' all-seeds fronts measured in the same box.
    let union: Vec<Point2> = off_pool.iter().chain(&on_pool).copied().collect();
    let reference = reference_point(&union);
    let (_, hv_off) = front_and_hv(&off_pool, reference);
    let (_, hv_on) = front_and_hv(&on_pool, reference);

    let ratio = calls_off as f64 / calls_on.max(1) as f64;
    let iso_ratio = needed_off / calls_on.max(1) as f64;
    println!(
        "{bits:>2}-bit (off {steps} / on {on_steps} steps x {repeats} seeds): \
         off {calls_off:5} synth calls | on {calls_on:5} ({screened:5} screened, \
         {forced:4} forced) | {ratio:5.2}x fewer | iso {iso_ratio:5.2}x{} \
         | pooled hv {hv_off:9.1} -> {hv_on:9.1} | best cost {best_off:.4} -> {best_on:.4}",
        if all_matched { "" } else { "+" },
    );
    json.field(&format!("synth_calls_off_{bits}"), calls_off as f64);
    json.field(&format!("synth_calls_on_{bits}"), calls_on as f64);
    json.field(&format!("surrogate_screened_{bits}"), screened as f64);
    json.field(&format!("surrogate_forced_{bits}"), forced as f64);
    json.field(&format!("call_reduction_{bits}"), ratio);
    json.field(&format!("iso_call_reduction_{bits}"), iso_ratio);
    json.field(&format!("iso_matched_{bits}"), if all_matched { 1.0 } else { 0.0 });
    json.field(&format!("hypervolume_off_{bits}"), hv_off);
    json.field(&format!("hypervolume_on_{bits}"), hv_on);
    json.field(&format!("best_cost_off_{bits}"), best_off);
    json.field(&format!("best_cost_on_{bits}"), best_on);
    (iso_ratio, hv_off, hv_on)
}

fn main() {
    let args = Args::parse();
    let ci_gate = args.flag("ci-gate");
    let seed: u64 = args.get("seed", 11);
    let knobs = Knobs {
        margin: args.get("sa-margin", 0.002),
        accept_floor: args.get("accept-floor", 1e-3),
        slack: args.get("guard-slack", 0.1),
        verify_top: args.get("verify-top", 8),
        hidden: args.get("hidden", 48),
        train_per_observe: args.get("train-per-observe", 4),
        initial_temp: args.get("initial-temp", 50.0),
        cooling: args.get("cooling", 0.985),
    };
    let repeats: usize = args.get("repeats", if ci_gate { 5 } else { 24 });

    let widths: &[(usize, usize)] = if ci_gate {
        &[(8, args.get("steps", 160))]
    } else {
        &[(8, args.get("steps", 160)), (16, args.get("steps", 160))]
    };

    let mut json = Json::new();
    let mut gate_ok = true;
    for &(bits, steps) in widths {
        let on_steps = args.get("on-steps", steps);
        let (iso_ratio, _, _) = bench_width(bits, steps, on_steps, seed, repeats, knobs, &mut json);
        // Gate on the iso-quality reduction: it already folds front
        // quality into the call count, so no separate hv check.
        if iso_ratio < 2.0 {
            gate_ok = false;
        }
    }

    std::fs::create_dir_all(results_dir()).expect("results dir");
    let path = results_dir().join("BENCH_surrogate.json");
    std::fs::write(&path, json.finish()).expect("write BENCH_surrogate.json");
    println!("wrote {}", path.display());

    if ci_gate {
        assert!(gate_ok, "surrogate gate failed: need >= 2x iso-quality synthesis-call reduction");
        println!("ci-gate OK: surrogate cuts iso-quality synthesis calls >= 2x");
    }
}
