//! Fig. 12 — optimization trajectories (mean ± std over repeated
//! runs) of RL-MUL, RL-MUL-E and SA under fixed trade-off weights.
//!
//! The paper plots six panels (AND-MUL, MBE-MUL, MAC × two widths);
//! the default here runs the three 8-bit panels with three seeds —
//! raise `--repeats`, `--steps`, or pass `--bits 16` for more.

use rlmul_baselines::SaConfig;
use rlmul_bench::args::Args;
use rlmul_bench::report::{results_dir, write_points_csv, TextTable};
use rlmul_core::{run_sa, train_a2c, train_dqn, A2cConfig, DqnConfig, EnvConfig, MulEnv};
use rlmul_ct::PpgKind;
use rlmul_pareto::aggregate_trajectories;

fn main() {
    let args = Args::parse();
    let steps: usize = args.get("steps", 40);
    let repeats: usize = args.get("repeats", 3);
    let bits: usize = args.get("bits", 8);
    let n_envs: usize = args.get("envs", 4);

    println!("Fig. 12 — optimization trajectories, mean ± std over {repeats} seeds\n");
    for kind in [PpgKind::And, PpgKind::Mbe, PpgKind::MacAnd] {
        let env_cfg = EnvConfig::new(bits, kind);
        println!("== {bits}-bit {} ==", kind.label());
        let mut all_rows: Vec<Vec<f64>> = Vec::new();
        let mut table = TextTable::new(["method", "start", "final mean", "final std", "best mean"]);
        for method in ["SA", "RL-MUL", "RL-MUL-E"] {
            let mut runs: Vec<Vec<f64>> = Vec::new();
            let mut bests: Vec<f64> = Vec::new();
            for r in 0..repeats {
                let seed = 100 * (r as u64 + 1);
                let out = match method {
                    "SA" => {
                        let sa = SaConfig { steps, ..Default::default() };
                        run_sa(&env_cfg, &sa, seed).expect("sa run completes")
                    }
                    "RL-MUL" => {
                        let mut env = MulEnv::new(env_cfg.clone()).expect("env builds");
                        let cfg = DqnConfig {
                            steps,
                            warmup: (steps / 5).max(4),
                            seed,
                            ..Default::default()
                        };
                        train_dqn(&mut env, &cfg).expect("dqn run completes")
                    }
                    _ => {
                        let cfg = A2cConfig {
                            steps: (steps / n_envs).max(2),
                            n_envs,
                            seed,
                            ..Default::default()
                        };
                        train_a2c(&env_cfg, &cfg).expect("a2c run completes")
                    }
                };
                bests.push(out.best_cost);
                // The paper's Fig. 12 tracks optimization progress, so
                // plot the incumbent (best-so-far) cost per step.
                let mut incumbent = f64::INFINITY;
                let run: Vec<f64> = out
                    .trajectory
                    .iter()
                    .map(|&c| {
                        incumbent = incumbent.min(c);
                        incumbent
                    })
                    .collect();
                runs.push(run);
            }
            let stats = aggregate_trajectories(&runs);
            let start = stats.mean.first().copied().unwrap_or(f64::NAN);
            let fin = stats.mean.last().copied().unwrap_or(f64::NAN);
            let fstd = stats.std.last().copied().unwrap_or(f64::NAN);
            let bmean = bests.iter().sum::<f64>() / bests.len() as f64;
            table.row([
                method.to_owned(),
                format!("{start:.3}"),
                format!("{fin:.3}"),
                format!("{fstd:.3}"),
                format!("{bmean:.3}"),
            ]);
            let midx = match method {
                "SA" => 0.0,
                "RL-MUL" => 1.0,
                _ => 2.0,
            };
            for (t, (m, s)) in stats.mean.iter().zip(&stats.std).enumerate() {
                all_rows.push(vec![midx, t as f64, *m, *s]);
            }
        }
        print!("{}", table.render());
        let path = results_dir().join(format!("fig12_traj_{bits}b_{}.csv", kind.label()));
        if write_points_csv(&path, "method(0=sa 1=rlmul 2=rlmule),step,mean,std", &all_rows).is_ok()
        {
            println!("wrote {}\n", path.display());
        }
    }
    println!("Paper claim: both RL methods outperform SA, and RL-MUL-E is the");
    println!("most stable/efficient (lowest final mean, smallest band).");
}
