//! Offline drop-in for the subset of `rand` 0.8 this workspace uses.
//!
//! The build environment has no network access and no registry cache,
//! so the real `rand` crate cannot be fetched. This shim implements
//! the exact API surface the repository consumes — [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] extension methods
//! `gen`, `gen_range` and `gen_bool` — on top of a deterministic
//! xoshiro256++ generator seeded through SplitMix64.
//!
//! The bit stream differs from upstream `rand`'s ChaCha-based
//! `StdRng`, which is fine for this repository: nothing asserts
//! specific draws, only determinism (same seed ⇒ same stream) and
//! reasonable statistical quality, both of which xoshiro256++
//! provides.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core random-number source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (upper half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of `T` from its standard distribution
    /// (full integer domain; `[0, 1)` for floats).
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution as _;
        distributions::Standard.sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

fn unit_f32<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
    (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
}

fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types that can be drawn uniformly from a bounded range.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[low, high)` (`inclusive` ⇒ `[low, high]`).
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self, inclusive: bool) -> Self;
}

/// Range shapes accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample from an empty range");
        T::sample_in(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        assert!(low <= high, "cannot sample from an empty range");
        T::sample_in(rng, low, high, true)
    }
}

macro_rules! uniform_int {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let span = (high as $wide).wrapping_sub(low as $wide) as u128
                    + if inclusive { 1 } else { 0 };
                // Widened modulo; bias is ≤ span/2^128 and irrelevant
                // for the range sizes this workspace draws.
                let draw = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                (low as $wide).wrapping_add((draw % span) as $wide) as $t
            }
        }
    )*};
}

uniform_int! {
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
}

macro_rules! uniform_float {
    ($($t:ty => $unit:ident),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                _inclusive: bool,
            ) -> Self {
                low + (high - low) * $unit(rng) as $t
            }
        }
    )*};
}

uniform_float!(f32 => unit_f32, f64 => unit_f64);

/// Distributions for [`Rng::gen`].
pub mod distributions {
    use super::{unit_f32, unit_f64, Rng, RngCore};

    /// A sampling rule producing `T`.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The standard distribution (full domain for integers, `[0, 1)`
    /// for floats).
    pub struct Standard;

    macro_rules! standard_int {
        ($($t:ty),* $(,)?) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                    RngCore::next_u64(rng) as $t
                }
            }
        )*};
    }

    standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Distribution<u128> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u128 {
            ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
            unit_f32(rng)
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            unit_f64(rng)
        }
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64. Deterministic, `Clone`, and fast.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// Snapshot of the full 256-bit generator state.
        ///
        /// Together with [`StdRng::from_state`] this lets callers
        /// checkpoint and bit-identically resume a random stream —
        /// the generator continues exactly where the snapshot was
        /// taken.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Reconstructs a generator from a [`StdRng::state`] snapshot.
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the reference seeding procedure
            // for the xoshiro family.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 2);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-4i64..=4);
            assert!((-4..=4).contains(&w));
            let f = rng.gen_range(-2.5f32..2.5);
            assert!((-2.5..2.5).contains(&f));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        let draws: Vec<f64> = (0..2000).map(|_| rng.gen::<f64>()).collect();
        assert!(draws.iter().all(|v| (0.0..1.0).contains(v)));
        assert!(draws.iter().any(|&v| v < 0.1));
        assert!(draws.iter().any(|&v| v > 0.9));
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean = {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..4000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((800..1200).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn range_sampling_hits_every_bucket() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut seen = [false; 8];
        for _ in 0..512 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn state_snapshot_resumes_the_stream_bit_identically() {
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..100 {
            rng.gen::<u64>();
        }
        let snapshot = rng.state();
        let tail: Vec<u64> = (0..64).map(|_| rng.gen::<u64>()).collect();
        let mut resumed = StdRng::from_state(snapshot);
        let replay: Vec<u64> = (0..64).map(|_| resumed.gen::<u64>()).collect();
        assert_eq!(tail, replay);
    }
}
