//! Property tests for the incremental arena-netlist pipeline: random
//! action sequences applied through [`IncrementalMultiplier`] must
//! leave the elaboration *equal* (not just isomorphic) to a
//! from-scratch [`MultiplierNetlist`] build, with the arena mirror in
//! sync and the delta lint clean.
//!
//! These run in release CI too (the incremental-equivalence job),
//! where the debug oracles inside `retarget` are compiled out — so the
//! assertions here are the ones actually guarding the fast path.

use proptest::prelude::*;
use rlmul_ct::{CompressorTree, PpgKind};
use rlmul_rtl::{lint, lint_delta, IncrementalMultiplier, MultiplierNetlist, Netlist};
use std::collections::BTreeMap;

/// Per-kind gate census — the coarse structural fingerprint compared
/// alongside full equality (its failure output is far more readable).
fn gate_stats(n: &Netlist) -> BTreeMap<String, usize> {
    let mut stats = BTreeMap::new();
    for g in n.gates() {
        *stats.entry(format!("{:?}", g.kind)).or_insert(0) += 1;
    }
    stats
}

fn kind_of(pick: usize) -> PpgKind {
    [PpgKind::And, PpgKind::Mbe, PpgKind::MacAnd][pick % 3]
}

/// Drives `inc` through `picks.len()` random legal actions, checking
/// the incremental result against a fresh elaboration at every step.
fn walk_and_check(tree: &CompressorTree, picks: &[usize]) -> Result<(), TestCaseError> {
    let mut inc =
        IncrementalMultiplier::new(tree).map_err(|e| TestCaseError::fail(e.to_string()))?;
    let mut cur = tree.clone();
    for &pick in picks {
        let actions = cur.valid_actions();
        if actions.is_empty() {
            break;
        }
        let action = actions[pick % actions.len()];
        cur = cur.apply_action(action).map_err(|e| TestCaseError::fail(e.to_string()))?;
        let delta = inc.retarget(&cur).map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert!(delta.size() > 0, "a tree change must touch gates");

        let fresh = MultiplierNetlist::elaborate(&cur)
            .map_err(|e| TestCaseError::fail(e.to_string()))?
            .into_netlist();
        prop_assert_eq!(gate_stats(inc.netlist()), gate_stats(&fresh));
        prop_assert!(
            *inc.netlist() == fresh,
            "incremental netlist diverged from scratch build after {:?}",
            action
        );
        prop_assert!(
            inc.arena().matches_netlist(&fresh),
            "arena mirror fell out of sync after {:?}",
            action
        );
        prop_assert_eq!(
            inc.arena().iter_live().count(),
            fresh.gates().len(),
            "arena live-slot count != netlist gate count"
        );

        let inc_lint = lint_delta(inc.arena(), inc.last_delta());
        prop_assert_eq!(inc_lint.errors(), 0, "delta lint: {}", inc_lint.render());
        let full_lint = lint(&fresh);
        prop_assert_eq!(full_lint.errors(), 0, "full lint: {}", full_lint.render());
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn random_walks_match_scratch_rebuilds(
        bits in 4usize..=8,
        kind_pick in 0usize..3,
        picks in prop::collection::vec(0usize..64, 1..=5),
    ) {
        let kind = kind_of(kind_pick);
        // Booth PPG supports even operand widths only.
        let bits = if matches!(kind, PpgKind::Mbe) { bits & !1 } else { bits };
        let tree = CompressorTree::wallace(bits, kind)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        walk_and_check(&tree, &picks)?;
    }

    #[test]
    fn dadda_walks_match_scratch_rebuilds(
        bits in 4usize..=8,
        picks in prop::collection::vec(0usize..64, 1..=5),
    ) {
        let tree = CompressorTree::dadda(bits, PpgKind::And)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        walk_and_check(&tree, &picks)?;
    }

    #[test]
    fn retargeting_back_and_forth_converges(
        bits in 4usize..=8,
        pick in 0usize..64,
    ) {
        // Forward to a neighbor and back: the incremental state must
        // land exactly on the original elaboration again.
        let tree = CompressorTree::wallace(bits, PpgKind::And)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        let original = MultiplierNetlist::elaborate(&tree)
            .map_err(|e| TestCaseError::fail(e.to_string()))?
            .into_netlist();
        let mut inc = IncrementalMultiplier::new(&tree)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        let actions = tree.valid_actions();
        let next = tree
            .apply_action(actions[pick % actions.len()])
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        inc.retarget(&next).map_err(|e| TestCaseError::fail(e.to_string()))?;
        inc.retarget(&tree).map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert!(*inc.netlist() == original, "round trip must restore the original netlist");
        prop_assert!(inc.arena().matches_netlist(&original));
    }
}

/// Larger widths are release-only: each step cross-checks against a
/// from-scratch elaboration, which is the very cost the incremental
/// path avoids in production.
#[test]
#[cfg_attr(debug_assertions, ignore = "release-only: 16-bit equivalence sweep")]
fn wide_walks_match_scratch_rebuilds() {
    let mut seed = 0x9e3779b97f4a7c15u64;
    for kind in [PpgKind::And, PpgKind::Mbe] {
        let tree = CompressorTree::wallace(16, kind).unwrap();
        let mut picks = Vec::new();
        for _ in 0..8 {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            picks.push((seed >> 33) as usize);
        }
        walk_and_check(&tree, &picks).unwrap();
    }
}
