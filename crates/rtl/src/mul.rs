//! Top-level multiplier and merged-MAC netlist generation.

use crate::adder::{add, AdderKind};
use crate::ct_elab::elaborate_ct;
use crate::netlist::{Netlist, NetlistBuilder};
use crate::ppg::{and_ppg, mbe_ppg, merge_mac_addend};
use crate::RtlError;
use rlmul_ct::{CompressorTree, PpgKind};

/// A fully elaborated multiplier (or merged MAC) netlist together
/// with its source tree metadata.
///
/// The design follows the paper's three-part decomposition: partial
/// product generator → compressor tree → carry-propagate adder
/// (Fig. 2). For MAC kinds the `2N`-bit addend is merged into the
/// partial products, so accumulation happens inside the tree
/// (Fig. 5, merged MAC).
///
/// Arithmetic is modulo `2^{2N}`: exact for plain multiplication
/// (`a·b < 2^{2N}`), wrap-around accumulate semantics for MACs.
///
/// ```
/// use rlmul_ct::{CompressorTree, PpgKind};
/// use rlmul_rtl::MultiplierNetlist;
///
/// let tree = CompressorTree::dadda(8, PpgKind::And)?;
/// let m = MultiplierNetlist::elaborate(&tree)?;
/// assert_eq!(m.netlist().outputs()[0].bits.len(), 16);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct MultiplierNetlist {
    netlist: Netlist,
    bits: usize,
    kind: PpgKind,
}

impl MultiplierNetlist {
    /// Elaborates `tree` into gates with the default Kogge–Stone
    /// final adder.
    ///
    /// # Errors
    ///
    /// Propagates compressor-tree errors and internal elaboration
    /// invariant violations as [`RtlError`].
    pub fn elaborate(tree: &CompressorTree) -> Result<Self, RtlError> {
        Self::elaborate_with_adder(tree, AdderKind::default())
    }

    /// Elaborates `tree` with an explicit final-adder architecture.
    ///
    /// # Errors
    ///
    /// Same as [`MultiplierNetlist::elaborate`].
    pub fn elaborate_with_adder(tree: &CompressorTree, cpa: AdderKind) -> Result<Self, RtlError> {
        let bits = tree.bits();
        let kind = tree.profile().kind();
        let name = format!("{}{}x{}", if kind.is_mac() { "mac" } else { "mul" }, bits, bits);
        let mut b = NetlistBuilder::new(name);
        let a = b.input("a", bits);
        let m = b.input("b", bits);
        let mut cols = match kind.base() {
            PpgKind::Mbe => mbe_ppg(&mut b, &a, &m),
            _ => and_ppg(&mut b, &a, &m),
        };
        if kind.is_mac() {
            let c = b.input("c", 2 * bits);
            merge_mac_addend(&mut cols, &c);
        }
        let rows = elaborate_ct(&mut b, tree, cols)?;
        let p = add(&mut b, &rows.row0, &rows.row1, cpa);
        b.output("p", &p);
        let netlist = b.finish().sweep();
        Ok(MultiplierNetlist { netlist, bits, kind })
    }

    /// The flattened gate-level netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Consumes the wrapper, returning the netlist.
    pub fn into_netlist(self) -> Netlist {
        self.netlist
    }

    /// Operand bit-width `N`.
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// Partial-product scheme of the source tree.
    pub fn kind(&self) -> PpgKind {
        self.kind
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiplier_elaborates_for_every_kind() {
        for kind in [PpgKind::And, PpgKind::Mbe, PpgKind::MacAnd, PpgKind::MacMbe] {
            let tree = CompressorTree::wallace(8, kind).unwrap();
            let m = MultiplierNetlist::elaborate(&tree).unwrap();
            m.netlist().validate().unwrap_or_else(|e| panic!("{kind}: {e}"));
            let n_inputs = m.netlist().inputs().len();
            assert_eq!(n_inputs, if kind.is_mac() { 3 } else { 2 }, "{kind}");
        }
    }

    #[test]
    fn mbe_uses_fewer_compressors_than_and_at_16_bits() {
        let and = CompressorTree::dadda(16, PpgKind::And).unwrap();
        let mbe = CompressorTree::dadda(16, PpgKind::Mbe).unwrap();
        let na = MultiplierNetlist::elaborate(&and).unwrap();
        let nm = MultiplierNetlist::elaborate(&mbe).unwrap();
        let fa = |n: &Netlist| n.stats().count("FA") + n.stats().count("HA");
        assert!(fa(nm.netlist()) < fa(na.netlist()));
    }

    #[test]
    fn ripple_variant_builds() {
        let tree = CompressorTree::dadda(8, PpgKind::And).unwrap();
        let m = MultiplierNetlist::elaborate_with_adder(&tree, AdderKind::RippleCarry).unwrap();
        m.netlist().validate().unwrap();
    }
}
