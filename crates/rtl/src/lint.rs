//! Structural netlist linting.
//!
//! [`lint`] runs a rule catalogue over the gate-level IR and returns a
//! [`LintReport`] with per-rule counters — the static-analysis gate
//! that every RL-generated design passes before it is allowed to
//! reach synthesis (and that imported Verilog passes after parsing).
//! Unlike [`Netlist::validate`], which stops at the first violation
//! and assumes construction order, the linter inspects the whole
//! netlist, classifies every finding and distinguishes true
//! combinational cycles (Tarjan SCC over the gate graph) from mere
//! ordering violations.
//!
//! Severities split in two: **errors** are designs that must not be
//! simulated or synthesized (multiple drivers, floating nets,
//! combinational loops, malformed ports); **warnings** are legal but
//! suspicious structure (dangling gate outputs, which arise naturally
//! from discarded top-column carries in modular arithmetic).

use crate::arena::{ArenaNetlist, NetlistDelta};
use crate::netlist::{Netlist, CONST0, CONST1};
use std::collections::BTreeMap;
use std::fmt;

/// One rule of the lint catalogue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintRule {
    /// A net with more than one driver (gate outputs, input-port bits
    /// and the two constant nets all count as drivers).
    MultiDriven,
    /// A net that is read (by a gate or an output port) but driven by
    /// nothing.
    UndrivenNet,
    /// A gate output pin whose net is read by nothing — dead logic or
    /// a discarded carry.
    DanglingOutput,
    /// A cycle through combinational gates (flip-flops break cycles).
    CombinationalLoop,
    /// A malformed port: zero width or a bit referencing a
    /// non-existent net.
    PortWidth,
    /// Two ports sharing one name, or a user port colliding with the
    /// implicit `clk` of a sequential design.
    DuplicateName,
}

impl LintRule {
    /// Every rule, in reporting order.
    pub const ALL: [LintRule; 6] = [
        LintRule::MultiDriven,
        LintRule::UndrivenNet,
        LintRule::DanglingOutput,
        LintRule::CombinationalLoop,
        LintRule::PortWidth,
        LintRule::DuplicateName,
    ];

    /// Number of rules in the catalogue.
    pub const COUNT: usize = Self::ALL.len();

    /// Stable short name used in counters and reports.
    pub fn name(self) -> &'static str {
        match self {
            LintRule::MultiDriven => "multi-driven",
            LintRule::UndrivenNet => "undriven-net",
            LintRule::DanglingOutput => "dangling-output",
            LintRule::CombinationalLoop => "combinational-loop",
            LintRule::PortWidth => "port-width",
            LintRule::DuplicateName => "duplicate-name",
        }
    }

    /// Whether a finding under this rule makes the netlist unusable.
    pub fn severity(self) -> Severity {
        match self {
            LintRule::DanglingOutput => Severity::Warning,
            _ => Severity::Error,
        }
    }

    fn index(self) -> usize {
        Self::ALL.iter().position(|&r| r == self).expect("rule is in ALL")
    }
}

impl fmt::Display for LintRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Legal but suspicious; synthesis may proceed.
    Warning,
    /// The netlist must not be simulated or synthesized.
    Error,
}

/// A single lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintIssue {
    /// The violated rule.
    pub rule: LintRule,
    /// Human-readable description with net/gate/port specifics.
    pub message: String,
}

impl fmt::Display for LintIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: [{}] {}",
            match self.rule.severity() {
                Severity::Error => "error",
                Severity::Warning => "warning",
            },
            self.rule,
            self.message
        )
    }
}

/// Outcome of linting one netlist.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LintReport {
    issues: Vec<LintIssue>,
    counts: [usize; LintRule::COUNT],
}

impl LintReport {
    fn push(&mut self, rule: LintRule, message: String) {
        self.counts[rule.index()] += 1;
        self.issues.push(LintIssue { rule, message });
    }

    /// All findings, grouped by rule in catalogue order.
    pub fn issues(&self) -> &[LintIssue] {
        &self.issues
    }

    /// Findings under one rule.
    pub fn count(&self, rule: LintRule) -> usize {
        self.counts[rule.index()]
    }

    /// Total error-severity findings.
    pub fn errors(&self) -> usize {
        LintRule::ALL
            .iter()
            .filter(|r| r.severity() == Severity::Error)
            .map(|&r| self.count(r))
            .sum()
    }

    /// Total warning-severity findings.
    pub fn warnings(&self) -> usize {
        LintRule::ALL
            .iter()
            .filter(|r| r.severity() == Severity::Warning)
            .map(|&r| self.count(r))
            .sum()
    }

    /// Whether the netlist may proceed to simulation and synthesis
    /// (no error-severity findings; warnings are allowed).
    pub fn is_clean(&self) -> bool {
        self.errors() == 0
    }

    /// One-line summary, e.g. `clean (2 warnings)` or
    /// `3 errors: 2 multi-driven, 1 undriven-net`.
    pub fn summary(&self) -> String {
        if self.is_clean() {
            match self.warnings() {
                0 => "clean".to_owned(),
                w => format!("clean ({w} warning{})", if w == 1 { "" } else { "s" }),
            }
        } else {
            let detail: Vec<String> = LintRule::ALL
                .iter()
                .filter(|&&r| self.count(r) > 0)
                .map(|&r| format!("{} {}", self.count(r), r))
                .collect();
            format!("{} errors: {}", self.errors(), detail.join(", "))
        }
    }

    /// Full multi-line rendering of every finding.
    pub fn render(&self) -> String {
        let mut s = self.summary();
        for issue in &self.issues {
            s.push('\n');
            s.push_str(&issue.to_string());
        }
        s
    }
}

/// Aggregated lint counters for the evaluation pipeline's stats line.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LintStats {
    /// Netlists linted.
    pub checks: usize,
    /// Total error-severity findings over all checks.
    pub errors: usize,
    /// Total warning-severity findings over all checks.
    pub warnings: usize,
    /// Findings per rule, indexed in [`LintRule::ALL`] order.
    pub by_rule: [usize; LintRule::COUNT],
}

impl LintStats {
    /// Folds one report into the counters.
    pub fn record(&mut self, report: &LintReport) {
        self.checks += 1;
        self.errors += report.errors();
        self.warnings += report.warnings();
        for (acc, &n) in self.by_rule.iter_mut().zip(&report.counts) {
            *acc += n;
        }
    }

    /// Accumulates another counter set.
    pub fn merge(&mut self, other: LintStats) {
        self.checks += other.checks;
        self.errors += other.errors;
        self.warnings += other.warnings;
        for (acc, n) in self.by_rule.iter_mut().zip(other.by_rule) {
            *acc += n;
        }
    }

    /// Deterministic one-line rendering for pipeline stats, with
    /// per-rule counters when anything fired.
    pub fn render(&self) -> String {
        if self.errors == 0 && self.warnings == 0 {
            return format!("lint {} checks clean", self.checks);
        }
        let detail: Vec<String> = LintRule::ALL
            .iter()
            .enumerate()
            .filter(|&(i, _)| self.by_rule[i] > 0)
            .map(|(i, r)| format!("{} {}", self.by_rule[i], r))
            .collect();
        format!("lint {} checks: {}", self.checks, detail.join(", "))
    }
}

/// Runs the full rule catalogue over `netlist`.
///
/// The pass is linear in gates + nets except for cycle detection,
/// which is a single iterative Tarjan SCC traversal of the
/// combinational gate graph.
pub fn lint(netlist: &Netlist) -> LintReport {
    let mut report = LintReport::default();
    let n = netlist.num_nets() as usize;
    let in_range = |net: crate::NetId| (net.0 as usize) < n;

    // --- Port shape rules -------------------------------------------------
    let mut names: BTreeMap<&str, usize> = BTreeMap::new();
    for (dir, ports) in [("input", netlist.inputs()), ("output", netlist.outputs())] {
        for p in ports {
            *names.entry(p.name.as_str()).or_insert(0) += 1;
            if p.bits.is_empty() {
                report.push(LintRule::PortWidth, format!("{dir} port {} has width 0", p.name));
            }
            for (k, &b) in p.bits.iter().enumerate() {
                if !in_range(b) {
                    report.push(
                        LintRule::PortWidth,
                        format!("{dir} port {}[{k}] references net {} ≥ {n}", p.name, b.0),
                    );
                }
            }
        }
    }
    for (name, count) in &names {
        if *count > 1 {
            report.push(
                LintRule::DuplicateName,
                format!("port name `{name}` declared {count} times"),
            );
        }
    }
    if netlist.is_sequential() && names.contains_key("clk") {
        report.push(
            LintRule::DuplicateName,
            "port `clk` collides with the implicit clock of a sequential design".to_owned(),
        );
    }
    // Out-of-range gate pins are counted under PortWidth's malformed-
    // reference umbrella and excluded from the driver analysis below.
    for (i, g) in netlist.gates().iter().enumerate() {
        for &pin in g.inputs().iter().chain(g.outputs()) {
            if !in_range(pin) {
                report.push(
                    LintRule::PortWidth,
                    format!("gate {i} ({:?}) references net {} ≥ {n}", g.kind, pin.0),
                );
            }
        }
    }

    // --- Driver / reader analysis ----------------------------------------
    let mut drivers = vec![0usize; n];
    let mut readers = vec![0usize; n];
    // The two constants are implicitly driven.
    drivers[CONST0.0 as usize] = 1;
    drivers[CONST1.0 as usize] = 1;
    // Driving gate index per net (for the cycle graph).
    let mut driver_gate = vec![usize::MAX; n];
    for p in netlist.inputs() {
        for &b in &p.bits {
            if in_range(b) {
                drivers[b.0 as usize] += 1;
            }
        }
    }
    for (i, g) in netlist.gates().iter().enumerate() {
        for &o in g.outputs() {
            if in_range(o) {
                drivers[o.0 as usize] += 1;
                driver_gate[o.0 as usize] = i;
            }
        }
        for &inp in g.inputs() {
            if in_range(inp) {
                readers[inp.0 as usize] += 1;
            }
        }
    }
    for p in netlist.outputs() {
        for &b in &p.bits {
            if in_range(b) {
                readers[b.0 as usize] += 1;
            }
        }
    }
    for net in 0..n {
        if drivers[net] > 1 {
            report.push(LintRule::MultiDriven, format!("net {net} has {} drivers", drivers[net]));
        }
        if drivers[net] == 0 && readers[net] > 0 {
            report.push(
                LintRule::UndrivenNet,
                format!("net {net} is read {} times but never driven", readers[net]),
            );
        }
    }
    for (i, g) in netlist.gates().iter().enumerate() {
        for (pin, &o) in g.outputs().iter().enumerate() {
            if in_range(o) && !o.is_const() && readers[o.0 as usize] == 0 {
                report.push(
                    LintRule::DanglingOutput,
                    format!("gate {i} ({:?}) output pin {pin} (net {}) is never read", g.kind, o.0),
                );
            }
        }
    }

    // --- Combinational cycles (iterative Tarjan SCC) ----------------------
    for scc in combinational_sccs(netlist, &driver_gate) {
        let preview: Vec<String> = scc.iter().take(8).map(|g| g.to_string()).collect();
        report.push(
            LintRule::CombinationalLoop,
            format!(
                "combinational loop through {} gate{}: {}{}",
                scc.len(),
                if scc.len() == 1 { "" } else { "s" },
                preview.join(" → "),
                if scc.len() > 8 { " → …" } else { "" }
            ),
        );
    }

    // Deterministic ordering: catalogue order, then discovery order.
    report.issues.sort_by_key(|i| i.rule.index());
    let obs = rlmul_obs::global();
    if obs.is_enabled() {
        obs.counter("rlmul_lint_runs_total", "Structural lint passes over a netlist.").inc();
        let help = "Lint findings by severity.";
        obs.labeled_counter("rlmul_lint_findings_total", help, &[("severity", "error")])
            .add(report.errors() as u64);
        obs.labeled_counter("rlmul_lint_findings_total", help, &[("severity", "warning")])
            .add(report.warnings() as u64);
    }
    report
}

/// Incremental lint: re-checks only the region an arena edit touched.
///
/// Port-shape rules are always re-run (they are O(ports), trivially
/// cheap); everything else — driver multiplicity, undriven reads,
/// dangling outputs, pin ranges, combinational loops — is evaluated
/// only for `delta.touched_nets` and `delta.added` gates, using the
/// arena's persistent fanout/driver tables instead of the O(circuit)
/// scan of [`lint`].
///
/// **Contract.** Starting from a netlist whose full lint is clean of
/// findings *outside* the delta region, `lint_delta` reports exactly
/// the findings a full pass over the edited netlist would attribute
/// to the touched nets and gates (messages use arena slot indices,
/// which coincide with netlist gate indices for splice-maintained
/// arenas). Pre-existing findings in untouched regions are *not*
/// re-reported — that is the point. The defect-factory tests in
/// [`crate::mutate`] pin this equivalence for the whole catalogue.
pub fn lint_delta(arena: &ArenaNetlist, delta: &NetlistDelta) -> LintReport {
    let mut report = LintReport::default();
    let n = arena.num_nets() as usize;
    let in_range = |net: crate::NetId| (net.0 as usize) < n;

    // --- Port shape rules (always re-run; O(ports)) -----------------------
    let mut names: BTreeMap<&str, usize> = BTreeMap::new();
    for (dir, ports) in [("input", arena.inputs()), ("output", arena.outputs())] {
        for p in ports {
            *names.entry(p.name.as_str()).or_insert(0) += 1;
            if p.bits.is_empty() {
                report.push(LintRule::PortWidth, format!("{dir} port {} has width 0", p.name));
            }
            for (k, &b) in p.bits.iter().enumerate() {
                if !in_range(b) {
                    report.push(
                        LintRule::PortWidth,
                        format!("{dir} port {}[{k}] references net {} ≥ {n}", p.name, b.0),
                    );
                }
            }
        }
    }
    for (name, count) in &names {
        if *count > 1 {
            report.push(
                LintRule::DuplicateName,
                format!("port name `{name}` declared {count} times"),
            );
        }
    }
    // (Gate scan short-circuited behind the name check: combinational
    // designs never pay it.)
    if names.contains_key("clk") && arena.iter_live().any(|(_, g)| g.kind.is_sequential()) {
        report.push(
            LintRule::DuplicateName,
            "port `clk` collides with the implicit clock of a sequential design".to_owned(),
        );
    }

    // --- Pin ranges for the added gates only ------------------------------
    for &slot in &delta.added {
        if let Some(g) = arena.gate(slot) {
            for &pin in g.inputs().iter().chain(g.outputs()) {
                if !in_range(pin) {
                    report.push(
                        LintRule::PortWidth,
                        format!("gate {slot} ({:?}) references net {} ≥ {n}", g.kind, pin.0),
                    );
                }
            }
        }
    }

    // --- Driver / reader analysis on the touched nets ---------------------
    for &net in &delta.touched_nets {
        if !in_range(net) || net.is_const() {
            continue;
        }
        let drivers = arena.driver_count(net) + usize::from(arena.is_primary_input(net));
        let readers = arena.fanout_of(net).len() + arena.po_reads(net);
        if drivers > 1 {
            report.push(LintRule::MultiDriven, format!("net {} has {drivers} drivers", net.0));
        }
        if drivers == 0 && readers > 0 {
            report.push(
                LintRule::UndrivenNet,
                format!("net {} is read {readers} times but never driven", net.0),
            );
        }
        if readers == 0 && drivers == 1 {
            if let Some(slot) = arena.driver_of(net) {
                let g = arena.gate(slot).expect("driver table points at a live slot");
                let pin = g.outputs().iter().position(|&o| o == net).unwrap_or(0);
                report.push(
                    LintRule::DanglingOutput,
                    format!(
                        "gate {slot} ({:?}) output pin {pin} (net {}) is never read",
                        g.kind, net.0
                    ),
                );
            }
        }
    }

    // --- Cycles through the edited cone -----------------------------------
    // Suffix-splice edits keep slots in topological order, which the
    // arena certifies in O(1) — every recorded combinational edge runs
    // strictly forward in slot order, so the SCC search (which follows
    // exactly those edges) cannot find a cycle and is skipped. Only
    // general surgery that breaks the ordering pays for Tarjan: a
    // cycle created by such an edit necessarily passes through an
    // edited gate or a sink of a touched net, so the search seeded
    // there finds it without walking the whole graph.
    if !arena.is_topo_ordered() {
        let num = arena.num_slots();
        let mut seeds: Vec<usize> = delta.added.iter().map(|&s| s as usize).collect();
        for &net in &delta.touched_nets {
            for &(s, _) in arena.fanout_of(net) {
                seeds.push(s as usize);
            }
        }
        seeds.sort_unstable();
        seeds.dedup();
        let succ_of = |g: usize| -> Vec<usize> {
            let mut out = Vec::new();
            let Some(gate) = arena.gate(g as u32) else { return out };
            if gate.kind.is_sequential() {
                return out;
            }
            for &inp in gate.inputs() {
                if inp.is_const() {
                    continue;
                }
                if let Some(d) = arena.driver_of(inp) {
                    let dg = arena.gate(d).expect("driver table points at a live slot");
                    if !dg.kind.is_sequential() {
                        out.push(d as usize);
                    }
                }
            }
            out
        };
        for scc in sccs_from(num, seeds, succ_of) {
            let preview: Vec<String> = scc.iter().take(8).map(|g| g.to_string()).collect();
            report.push(
                LintRule::CombinationalLoop,
                format!(
                    "combinational loop through {} gate{}: {}{}",
                    scc.len(),
                    if scc.len() == 1 { "" } else { "s" },
                    preview.join(" → "),
                    if scc.len() > 8 { " → …" } else { "" }
                ),
            );
        }
    }

    report.issues.sort_by_key(|i| i.rule.index());
    let obs = rlmul_obs::global();
    if obs.is_enabled() {
        obs.counter("rlmul_lint_delta_runs_total", "Incremental (delta) lint passes.").inc();
        let help = "Lint findings by severity.";
        obs.labeled_counter("rlmul_lint_findings_total", help, &[("severity", "error")])
            .add(report.errors() as u64);
        obs.labeled_counter("rlmul_lint_findings_total", help, &[("severity", "warning")])
            .add(report.warnings() as u64);
    }
    report
}

/// Strongly connected components of the combinational gate graph that
/// form true cycles (size ≥ 2, or a gate feeding itself). Flip-flops
/// are sequential boundaries and excluded. Iterative Tarjan, so deep
/// carry chains cannot overflow the stack.
fn combinational_sccs(netlist: &Netlist, driver_gate: &[usize]) -> Vec<Vec<usize>> {
    let gates = netlist.gates();
    let num = gates.len();
    let succ_of = |g: usize| -> Vec<usize> {
        // Edges run driver → reader; we traverse reader → driver
        // (direction is irrelevant for SCCs).
        let mut out = Vec::new();
        if gates[g].kind.is_sequential() {
            return out;
        }
        for &inp in gates[g].inputs() {
            if let Some(&d) = driver_gate.get(inp.0 as usize) {
                if d != usize::MAX && !gates[d].kind.is_sequential() {
                    out.push(d);
                }
            }
        }
        out
    };
    sccs_from(num, 0..num, succ_of)
}

/// Iterative Tarjan over an arbitrary gate graph, exploring only from
/// `starts`. With `starts = 0..num` this finds every cyclic SCC; with
/// a restricted seed set it finds every cyclic SCC reachable from a
/// seed — which is exactly the delta-lint contract (a cycle created
/// by an edit always passes through an edited gate).
fn sccs_from(
    num: usize,
    starts: impl IntoIterator<Item = usize>,
    succ_of: impl Fn(usize) -> Vec<usize>,
) -> Vec<Vec<usize>> {
    let mut index = vec![u32::MAX; num];
    let mut lowlink = vec![0u32; num];
    let mut on_stack = vec![false; num];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0u32;
    let mut sccs = Vec::new();
    // Explicit DFS frames: (gate, successor list, next successor).
    let mut frames: Vec<(usize, Vec<usize>, usize)> = Vec::new();
    for start in starts {
        if index[start] != u32::MAX {
            continue;
        }
        frames.push((start, succ_of(start), 0));
        index[start] = next_index;
        lowlink[start] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start] = true;
        while !frames.is_empty() {
            let (v, next_succ) = {
                let frame = frames.last_mut().expect("non-empty");
                let v = frame.0;
                if frame.2 < frame.1.len() {
                    let w = frame.1[frame.2];
                    frame.2 += 1;
                    (v, Some(w))
                } else {
                    (v, None)
                }
            };
            match next_succ {
                Some(w) if index[w] == u32::MAX => {
                    index[w] = next_index;
                    lowlink[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push((w, succ_of(w), 0));
                }
                Some(w) => {
                    if on_stack[w] {
                        lowlink[v] = lowlink[v].min(index[w]);
                    }
                }
                None => {
                    if lowlink[v] == index[v] {
                        let mut scc = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w] = false;
                            scc.push(w);
                            if w == v {
                                break;
                            }
                        }
                        let self_loop = scc.len() == 1 && succ_of(scc[0]).contains(&scc[0]);
                        if scc.len() > 1 || self_loop {
                            scc.sort_unstable();
                            sccs.push(scc);
                        }
                    }
                    frames.pop();
                    if let Some(parent) = frames.last() {
                        let p = parent.0;
                        lowlink[p] = lowlink[p].min(lowlink[v]);
                    }
                }
            }
        }
    }
    sccs.sort_unstable();
    sccs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::NetlistBuilder;

    #[test]
    fn clean_netlist_passes() {
        let mut b = NetlistBuilder::new("clean");
        let x = b.input("x", 2);
        let y = b.xor2(x[0], x[1]);
        b.output("y", &[y]);
        let r = lint(&b.finish());
        assert!(r.is_clean(), "{}", r.render());
        assert_eq!(r.warnings(), 0);
    }

    #[test]
    fn dangling_output_is_a_warning_not_an_error() {
        let mut b = NetlistBuilder::new("dangle");
        let x = b.input("x", 2);
        let (s, _carry) = b.half_adder(x[0], x[1]); // carry never read
        b.output("s", &[s]);
        let r = lint(&b.finish());
        assert!(r.is_clean());
        assert_eq!(r.count(LintRule::DanglingOutput), 1);
        assert_eq!(r.warnings(), 1);
        assert!(r.summary().contains("1 warning"));
    }

    #[test]
    fn duplicate_port_names_are_flagged() {
        let mut b = NetlistBuilder::new("dup");
        let x = b.input("x", 1);
        b.output("x", &[x[0]]);
        let r = lint(&b.finish());
        assert_eq!(r.count(LintRule::DuplicateName), 1);
        assert!(!r.is_clean());
    }

    #[test]
    fn clk_collision_on_sequential_designs() {
        let mut b = NetlistBuilder::new("clkclash");
        let x = b.input("clk", 1);
        let q = b.dff(x[0]);
        b.output("q", &[q]);
        let r = lint(&b.finish());
        assert_eq!(r.count(LintRule::DuplicateName), 1);
    }

    #[test]
    fn stats_accumulate_per_rule() {
        let mut stats = LintStats::default();
        let mut b = NetlistBuilder::new("one");
        let x = b.input("x", 2);
        let (s, _c) = b.half_adder(x[0], x[1]);
        b.output("s", &[s]);
        let r = lint(&b.finish());
        stats.record(&r);
        stats.record(&r);
        assert_eq!(stats.checks, 2);
        assert_eq!(stats.warnings, 2);
        assert_eq!(stats.by_rule[2], 2); // dangling-output slot
        assert!(stats.render().contains("dangling-output"));
        let mut total = LintStats::default();
        total.merge(stats);
        assert_eq!(total.checks, 2);
    }

    #[test]
    fn render_is_deterministic_and_ordered() {
        let mut b = NetlistBuilder::new("r");
        let x = b.input("x", 1);
        b.output("x", &[x[0]]);
        let r = lint(&b.finish());
        assert_eq!(r.render(), r.render());
    }
}
