//! Arena-backed mutable netlist graph.
//!
//! [`ArenaNetlist`] keeps gates in u32-indexed slots with persistent
//! side-structures — per-net fanout tables, per-net driver counts, a
//! free-list for deleted slots, and incrementally maintained logic
//! levels — so a local edit (one compressor-tree action, one injected
//! defect) is O(cone) graph surgery instead of an O(circuit) rebuild.
//! Every edit returns a [`NetlistDelta`] describing exactly which
//! slots and nets changed; downstream consumers (incremental lint,
//! technology mapping, STA) re-examine only that set.
//!
//! Two edit entry points cover the two workloads:
//!
//! * [`ArenaNetlist::splice_suffix`] — the incremental-elaboration
//!   fast path. Compressor-tree legalization only ever changes a
//!   contiguous column range starting at the action column, and
//!   elaboration emits gates column-major, so a re-elaborated netlist
//!   shares a gate *prefix* with its predecessor. The splice truncates
//!   the disagreeing suffix and appends the new one, preserving the
//!   invariant that live slots in slot order are exactly the compacted
//!   netlist in topological order.
//! * [`ArenaNetlist::replace_gates`] — general surgery (used by the
//!   defect factory in [`crate::mutate`] and lint tests). Freed slots
//!   go on the free-list and are reused LIFO by later additions.

use crate::netlist::{Gate, NetId, Netlist, Port};

/// Sentinel for "no driving gate recorded" in the driver table.
const NO_DRIVER: u32 = u32::MAX;

/// Description of one arena edit: which slots were removed and added,
/// and which nets had their connectivity (driver or fanout) touched.
///
/// This is the contract between the netlist core and the incremental
/// downstream passes: lint re-checks `touched_nets`, mapping and STA
/// re-visit the cones rooted at `added` slots and at the drivers of
/// `touched_nets`.
#[derive(Debug, Clone, Default)]
pub struct NetlistDelta {
    /// Slots freed by the edit (their former gates are gone).
    pub removed: Vec<u32>,
    /// Slots holding gates added by the edit.
    pub added: Vec<u32>,
    /// Nets whose driver set or fanout set changed, sorted and
    /// deduplicated. Constants are excluded.
    pub touched_nets: Vec<NetId>,
    /// Whether output ports changed (input ports never change).
    pub ports_changed: bool,
}

impl NetlistDelta {
    /// Total number of gate slots involved in the edit.
    pub fn size(&self) -> usize {
        self.removed.len() + self.added.len()
    }
}

/// A mutable gate graph with arena slots and persistent connectivity
/// side-structures. See the module docs for the design rationale.
#[derive(Debug, Clone)]
pub struct ArenaNetlist {
    name: String,
    num_nets: u32,
    inputs: Vec<Port>,
    outputs: Vec<Port>,
    /// Gate storage; `alive[i]` says whether slot `i` is occupied.
    slots: Vec<Gate>,
    alive: Vec<bool>,
    /// Freed slots available for reuse, popped LIFO.
    free: Vec<u32>,
    /// Per-net count of driving gate output pins (saturating at 255).
    drivers: Vec<u8>,
    /// Per-net slot of the most recent driver, [`NO_DRIVER`] if none
    /// is recorded. Exact whenever the net has at most one driver.
    driver: Vec<u32>,
    /// Per-net gate sinks as `(slot, input pin)` pairs.
    fanout: Vec<Vec<(u32, u8)>>,
    /// Per-net number of output-port reads.
    po_reads: Vec<u16>,
    /// Per-net flag: driven by a primary input port.
    pi: Vec<bool>,
    /// Per-slot logic level (0 for slots whose inputs are all
    /// constants/PIs; sequential gates restart at 0). Exact for
    /// acyclic graphs; best-effort after an edit introduces a cycle.
    level: Vec<u32>,
    live: usize,
    /// Number of recorded combinational driver→sink edges that go
    /// *backward* in slot order (driver slot ≥ sink slot). Zero is a
    /// topological-order certificate: the combinational graph (as seen
    /// through the driver table) is acyclic, and incremental lint can
    /// skip cycle search. Maintained exactly by every connect,
    /// disconnect, and driver retarget.
    order_violations: usize,
    /// Scratch bitmap for touched-net dedup in `splice_suffix`, kept
    /// across calls (always all-false between edits) so the hot path
    /// never re-allocates it.
    touched_mark: Vec<bool>,
}

impl ArenaNetlist {
    /// Builds the arena mirror of `n`, computing all side-structures.
    pub fn from_netlist(n: &Netlist) -> Self {
        let nets = n.num_nets() as usize;
        let mut a = ArenaNetlist {
            name: n.name().to_string(),
            num_nets: n.num_nets(),
            inputs: n.inputs().to_vec(),
            outputs: n.outputs().to_vec(),
            slots: Vec::with_capacity(n.gates().len()),
            alive: Vec::with_capacity(n.gates().len()),
            free: Vec::new(),
            drivers: vec![0; nets],
            driver: vec![NO_DRIVER; nets],
            fanout: vec![Vec::new(); nets],
            po_reads: vec![0; nets],
            pi: vec![false; nets],
            level: Vec::with_capacity(n.gates().len()),
            live: 0,
            order_violations: 0,
            touched_mark: Vec::new(),
        };
        for p in n.inputs() {
            for &b in &p.bits {
                a.pi[b.0 as usize] = true;
            }
        }
        for p in n.outputs() {
            for &b in &p.bits {
                if !b.is_const() {
                    a.po_reads[b.0 as usize] = a.po_reads[b.0 as usize].saturating_add(1);
                }
            }
        }
        for g in n.gates() {
            let slot = a.slots.len() as u32;
            a.slots.push(*g);
            a.alive.push(true);
            a.level.push(0);
            a.live += 1;
            a.connect(slot);
            a.level[slot as usize] = a.compute_level(slot);
        }
        a
    }

    /// Design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total number of nets including the two constants.
    pub fn num_nets(&self) -> u32 {
        self.num_nets
    }

    /// Primary input ports.
    pub fn inputs(&self) -> &[Port] {
        &self.inputs
    }

    /// Primary output ports.
    pub fn outputs(&self) -> &[Port] {
        &self.outputs
    }

    /// Number of live gates.
    pub fn num_live(&self) -> usize {
        self.live
    }

    /// Number of slots currently on the free-list.
    pub fn num_free(&self) -> usize {
        self.free.len()
    }

    /// Total slot capacity (live + free + never-freed dead).
    pub fn num_slots(&self) -> usize {
        self.slots.len()
    }

    /// The gate in `slot`, if the slot is live.
    pub fn gate(&self, slot: u32) -> Option<&Gate> {
        if self.alive.get(slot as usize).copied().unwrap_or(false) {
            Some(&self.slots[slot as usize])
        } else {
            None
        }
    }

    /// Live `(slot, gate)` pairs in ascending slot order.
    pub fn iter_live(&self) -> impl Iterator<Item = (u32, &Gate)> + '_ {
        self.slots.iter().enumerate().filter(|&(i, _)| self.alive[i]).map(|(i, g)| (i as u32, g))
    }

    /// Slot of the gate driving `net`, if one is recorded. Exact
    /// whenever the net has at most one driver (the well-formed case).
    pub fn driver_of(&self, net: NetId) -> Option<u32> {
        let d = *self.driver.get(net.0 as usize)?;
        (d != NO_DRIVER).then_some(d)
    }

    /// Number of gate output pins driving `net`.
    pub fn driver_count(&self, net: NetId) -> usize {
        self.drivers.get(net.0 as usize).copied().unwrap_or(0) as usize
    }

    /// Gate sinks of `net` as `(slot, input pin)` pairs.
    pub fn fanout_of(&self, net: NetId) -> &[(u32, u8)] {
        self.fanout.get(net.0 as usize).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of output-port bits reading `net`.
    pub fn po_reads(&self, net: NetId) -> usize {
        self.po_reads.get(net.0 as usize).copied().unwrap_or(0) as usize
    }

    /// Whether `net` is a primary-input bit.
    pub fn is_primary_input(&self, net: NetId) -> bool {
        self.pi.get(net.0 as usize).copied().unwrap_or(false)
    }

    /// Logic level of a live slot (see the `level` field docs).
    pub fn level_of(&self, slot: u32) -> u32 {
        self.level[slot as usize]
    }

    /// Whether every recorded combinational driver→sink edge goes from
    /// a lower slot to a strictly higher one.
    ///
    /// [`ArenaNetlist::splice_suffix`] keeps live slots in elaboration
    /// (topological) order, so this holds along the entire retarget
    /// fast path; it certifies the combinational graph acyclic and
    /// lets [`crate::lint_delta`] skip cycle search outright. General
    /// surgery with slot reuse may break the ordering, in which case
    /// lint falls back to the seeded SCC search.
    pub fn is_topo_ordered(&self) -> bool {
        self.order_violations == 0
    }

    /// Maximum logic level over live slots (0 for an empty arena).
    pub fn max_level(&self) -> u32 {
        self.iter_live().map(|(s, _)| self.level[s as usize]).max().unwrap_or(0)
    }

    /// Allocates a fresh net id (for edits that introduce new wires).
    pub fn fresh_net(&mut self) -> NetId {
        let id = NetId(self.num_nets);
        self.num_nets += 1;
        self.grow_net_tables();
        id
    }

    /// General graph surgery: atomically deletes the live slots in
    /// `remove` and inserts `add`, reusing freed slots LIFO. Returns
    /// the delta. Gate inputs/outputs may reference any existing net
    /// or one obtained from [`ArenaNetlist::fresh_net`].
    ///
    /// Slot order is *not* kept topological across this call (reused
    /// slots land wherever the free-list points); use
    /// [`ArenaNetlist::splice_suffix`] when the downstream consumers
    /// need compaction to stay in topological order.
    ///
    /// # Panics
    ///
    /// Panics if a slot in `remove` is not live.
    pub fn replace_gates(&mut self, remove: &[u32], add: &[Gate]) -> NetlistDelta {
        let mut delta = NetlistDelta::default();
        for &slot in remove {
            assert!(self.gate(slot).is_some(), "replace_gates: slot {slot} is not live");
            self.disconnect(slot, &mut delta.touched_nets);
            self.alive[slot as usize] = false;
            self.free.push(slot);
            self.live -= 1;
            delta.removed.push(slot);
        }
        for g in add {
            let slot = match self.free.pop() {
                Some(s) => {
                    self.slots[s as usize] = *g;
                    self.alive[s as usize] = true;
                    s
                }
                None => {
                    self.slots.push(*g);
                    self.alive.push(true);
                    self.level.push(0);
                    (self.slots.len() - 1) as u32
                }
            };
            self.live += 1;
            self.connect(slot);
            touch_gate_nets(g, &mut delta.touched_nets);
            delta.added.push(slot);
        }
        delta.touched_nets.sort_unstable_by_key(|n| n.0);
        delta.touched_nets.dedup();
        self.relevel(&delta);
        debug_assert_eq!(self.order_violations, self.recount_order_violations());
        delta
    }

    /// Rewires one input pin of a live gate to `net` (defect-factory
    /// helper: keeps the edit inside the delta API without a
    /// remove/add pair changing slot numbering).
    ///
    /// # Panics
    ///
    /// Panics if `slot` is not live or `pin` is out of range.
    pub fn rewire_input(&mut self, slot: u32, pin: u8, net: NetId) -> NetlistDelta {
        let g = *self.gate(slot).expect("rewire_input: slot is not live");
        assert!((pin as usize) < g.inputs().len(), "rewire_input: pin out of range");
        let mut ng = g;
        ng.ins[pin as usize] = net;
        let mut delta = NetlistDelta::default();
        self.disconnect(slot, &mut delta.touched_nets);
        self.slots[slot as usize] = ng;
        self.connect(slot);
        touch_gate_nets(&ng, &mut delta.touched_nets);
        delta.removed.push(slot);
        delta.added.push(slot);
        delta.touched_nets.sort_unstable_by_key(|n| n.0);
        delta.touched_nets.dedup();
        self.relevel(&delta);
        debug_assert_eq!(self.order_violations, self.recount_order_violations());
        delta
    }

    /// Replaces the output ports (defect-factory helper). Returns a
    /// delta with `ports_changed` set and the affected nets touched.
    pub fn set_outputs(&mut self, outputs: Vec<Port>) -> NetlistDelta {
        let mut delta = NetlistDelta { ports_changed: true, ..Default::default() };
        for p in &self.outputs {
            for &b in &p.bits {
                if !b.is_const() {
                    delta.touched_nets.push(b);
                }
            }
        }
        self.outputs = outputs;
        for p in &self.outputs {
            for &b in &p.bits {
                if !b.is_const() {
                    delta.touched_nets.push(b);
                }
            }
        }
        self.recount_po_reads();
        delta.touched_nets.sort_unstable_by_key(|n| n.0);
        delta.touched_nets.dedup();
        delta
    }

    /// The incremental-elaboration fast path: replaces everything from
    /// gate index `shared_prefix` onward (and the output ports and net
    /// count) with the corresponding suffix of `n`, which must agree
    /// with the arena's compaction on the first `shared_prefix` gates
    /// and on the input ports.
    ///
    /// Preserves the invariant that live slots in ascending order are
    /// exactly `n.gates()` (callers that only ever splice keep the
    /// arena compaction-identical to the netlist). Freed suffix slots
    /// beyond the new length are dropped, not free-listed, to keep
    /// that ordering.
    pub fn splice_suffix(&mut self, n: &Netlist, shared_prefix: usize) -> NetlistDelta {
        debug_assert!(self.free.is_empty(), "splice_suffix requires a compact arena");
        debug_assert_eq!(self.inputs, n.inputs(), "input ports must not change");
        let mut delta = NetlistDelta::default();

        // Disconnect and drop the old suffix, highest slot first so
        // net-table truncation below sees no stale entries.
        for slot in (shared_prefix..self.slots.len()).rev() {
            if self.alive[slot] {
                self.disconnect(slot as u32, &mut delta.touched_nets);
                self.live -= 1;
                delta.removed.push(slot as u32);
            }
        }
        self.slots.truncate(shared_prefix);
        self.alive.truncate(shared_prefix);
        self.level.truncate(shared_prefix);
        delta.removed.reverse();

        // Output ports: touched if any bit net changed.
        if self.outputs != n.outputs() {
            delta.ports_changed = true;
            for p in self.outputs.iter().chain(n.outputs().iter()) {
                for &b in &p.bits {
                    if !b.is_const() {
                        delta.touched_nets.push(b);
                    }
                }
            }
            self.outputs = n.outputs().to_vec();
        }

        // Net tables only ever grow. When the net space shrinks, the
        // suffix disconnect above already reset the tail entries (the
        // prefix cannot reference suffix-created nets), so leaving
        // them in place is safe and lets every fanout buffer keep its
        // capacity for the next splice instead of churning the
        // allocator twice per step.
        let nets = n.num_nets() as usize;
        self.num_nets = n.num_nets();
        if self.drivers.len() < nets {
            self.drivers.resize(nets, 0);
            self.driver.resize(nets, NO_DRIVER);
            self.fanout.resize(nets, Vec::new());
            self.po_reads.resize(nets, 0);
            self.pi.resize(nets, false);
        }
        self.recount_po_reads();

        // Append and connect the new suffix (already in topological
        // order, so levels compute exactly in one forward pass).
        for g in &n.gates()[shared_prefix..] {
            let slot = self.slots.len() as u32;
            self.slots.push(*g);
            self.alive.push(true);
            self.level.push(0);
            self.live += 1;
            self.connect(slot);
            self.level[slot as usize] = self.compute_level(slot);
            touch_gate_nets(g, &mut delta.touched_nets);
            delta.added.push(slot);
        }
        // Sort + dedup the touched-net log via one bitmap pass: the
        // raw log holds an entry per suffix pin (several times the net
        // count), so marking and one ascending scan beats sorting it.
        let nets = self.num_nets as usize;
        if self.touched_mark.len() < nets {
            self.touched_mark.resize(nets, false);
        }
        let mut lo = nets;
        for &t in &delta.touched_nets {
            let i = t.0 as usize;
            if i < nets {
                self.touched_mark[i] = true;
                lo = lo.min(i);
            }
        }
        let mut deduped = Vec::with_capacity(nets - lo);
        for i in lo..nets {
            if self.touched_mark[i] {
                self.touched_mark[i] = false;
                deduped.push(NetId(i as u32));
            }
        }
        delta.touched_nets = deduped;
        debug_assert_eq!(self.order_violations, self.recount_order_violations());
        delta
    }

    /// Compacts the arena into an immutable [`Netlist`]: live slots in
    /// ascending slot order. For arenas maintained exclusively through
    /// [`ArenaNetlist::splice_suffix`] this is gate-for-gate identical
    /// to the source netlist; after general surgery the order may not
    /// be topological (fine for lint, not for simulation).
    pub fn to_netlist(&self) -> Netlist {
        let gates: Vec<Gate> = self.iter_live().map(|(_, g)| *g).collect();
        Netlist::from_parts(
            self.name.clone(),
            self.num_nets,
            self.inputs.clone(),
            self.outputs.clone(),
            gates,
        )
    }

    /// Whether the arena's compaction equals `n` exactly (same name,
    /// ports, net count, and gate sequence). This is the isomorphism
    /// check the property tests pin the incremental pipeline against:
    /// net ids are allocated by replaying the same deterministic
    /// elaboration, so "isomorphic" collapses to "equal".
    pub fn matches_netlist(&self, n: &Netlist) -> bool {
        self.name == n.name()
            && self.num_nets == n.num_nets()
            && self.inputs == n.inputs()
            && self.outputs == n.outputs()
            && self.live == n.gates().len()
            && self.iter_live().map(|(_, g)| g).eq(n.gates().iter())
    }

    fn grow_net_tables(&mut self) {
        let nets = self.num_nets as usize;
        if self.fanout.len() < nets {
            self.drivers.resize(nets, 0);
            self.driver.resize(nets, NO_DRIVER);
            self.fanout.resize(nets, Vec::new());
            self.po_reads.resize(nets, 0);
            self.pi.resize(nets, false);
        }
    }

    fn recount_po_reads(&mut self) {
        self.po_reads.iter_mut().for_each(|c| *c = 0);
        for p in &self.outputs {
            for &b in &p.bits {
                if !b.is_const() && (b.0 as usize) < self.num_nets as usize {
                    self.po_reads[b.0 as usize] = self.po_reads[b.0 as usize].saturating_add(1);
                }
            }
        }
    }

    /// One if the recorded edge `d → s` runs backward in slot order
    /// between two combinational gates, zero otherwise. The driver
    /// table only ever points at live slots, so both kinds are stable
    /// between the matching `+=` and `-=` of an edge.
    fn edge_violation(&self, d: u32, s: u32) -> usize {
        usize::from(
            d >= s
                && !self.slots[d as usize].kind.is_sequential()
                && !self.slots[s as usize].kind.is_sequential(),
        )
    }

    /// Points the recorded driver of `o` at `to` ([`NO_DRIVER`] to
    /// clear), re-classifying the slot order of every existing fanout
    /// edge of `o` against the new driver.
    fn retarget_driver(&mut self, o: NetId, to: u32) {
        let from = std::mem::replace(&mut self.driver[o.0 as usize], to);
        if from == to {
            return;
        }
        let slots = &self.slots;
        let comb = |s: u32| !slots[s as usize].kind.is_sequential();
        let mut delta = 0isize;
        for &(s, _) in &self.fanout[o.0 as usize] {
            if from != NO_DRIVER && from >= s && comb(from) && comb(s) {
                delta -= 1;
            }
            if to != NO_DRIVER && to >= s && comb(to) && comb(s) {
                delta += 1;
            }
        }
        self.order_violations =
            self.order_violations.checked_add_signed(delta).expect("edge accounting imbalance");
    }

    /// Registers a live slot's pins in the net tables. Out-of-range
    /// nets (possible in deliberately corrupted test netlists) are
    /// skipped — lint flags them from the gate itself.
    fn connect(&mut self, slot: u32) {
        let g = self.slots[slot as usize];
        for (pin, &i) in g.inputs().iter().enumerate() {
            if !i.is_const() && (i.0 as usize) < self.num_nets as usize {
                let d = self.driver[i.0 as usize];
                if d != NO_DRIVER {
                    self.order_violations += self.edge_violation(d, slot);
                }
                self.fanout[i.0 as usize].push((slot, pin as u8));
            }
        }
        for &o in g.outputs() {
            if !o.is_const() && (o.0 as usize) < self.num_nets as usize {
                self.drivers[o.0 as usize] = self.drivers[o.0 as usize].saturating_add(1);
                self.retarget_driver(o, slot);
            }
        }
    }

    /// Removes a live slot's pins from the net tables, recording the
    /// affected nets.
    fn disconnect(&mut self, slot: u32, touched: &mut Vec<NetId>) {
        let g = self.slots[slot as usize];
        for &i in g.inputs() {
            if !i.is_const() && (i.0 as usize) < self.num_nets as usize {
                let d = self.driver[i.0 as usize];
                if d != NO_DRIVER {
                    // The slot may read the same net on several pins.
                    let removed =
                        self.fanout[i.0 as usize].iter().filter(|&&(s, _)| s == slot).count();
                    self.order_violations -= removed * self.edge_violation(d, slot);
                }
                self.fanout[i.0 as usize].retain(|&(s, _)| s != slot);
                touched.push(i);
            }
        }
        for &o in g.outputs() {
            if !o.is_const() && (o.0 as usize) < self.num_nets as usize {
                self.drivers[o.0 as usize] = self.drivers[o.0 as usize].saturating_sub(1);
                if self.driver[o.0 as usize] == slot {
                    // Another driver may remain (multi-driven defect);
                    // its slot is rediscovered from any live writer.
                    self.retarget_driver(o, NO_DRIVER);
                }
                touched.push(o);
            }
        }
    }

    /// O(edges) recount of `order_violations`, for debug validation
    /// after each edit entry point (compiled out of release builds
    /// with the `debug_assert_eq!` that calls it).
    fn recount_order_violations(&self) -> usize {
        let mut n = 0;
        for (slot, g) in self.iter_live() {
            for &i in g.inputs() {
                if !i.is_const() && (i.0 as usize) < self.num_nets as usize {
                    let d = self.driver[i.0 as usize];
                    if d != NO_DRIVER {
                        n += self.edge_violation(d, slot);
                    }
                }
            }
        }
        n
    }

    fn net_level(&self, net: NetId) -> u32 {
        if net.is_const() || (net.0 as usize) >= self.num_nets as usize {
            return 0;
        }
        match self.driver[net.0 as usize] {
            NO_DRIVER => 0,
            d => self.level[d as usize],
        }
    }

    fn compute_level(&self, slot: u32) -> u32 {
        let g = &self.slots[slot as usize];
        if g.kind.is_sequential() {
            return 0;
        }
        1 + g
            .inputs()
            .iter()
            .filter(|i| !i.is_const())
            .map(|&i| self.net_level(i))
            .max()
            .unwrap_or(0)
    }

    /// Re-levels the cone downstream of an edit. Exact on acyclic
    /// graphs; bounded (and therefore approximate) if the edit created
    /// a combinational cycle — lint, not levels, is the cycle oracle.
    fn relevel(&mut self, delta: &NetlistDelta) {
        let mut work: Vec<u32> = delta.added.clone();
        for &t in &delta.touched_nets {
            for &(s, _) in self.fanout_of(t) {
                work.push(s);
            }
        }
        let mut budget = (self.live + 1) * 8;
        while let Some(slot) = work.pop() {
            if budget == 0 {
                return;
            }
            budget -= 1;
            if !self.alive[slot as usize] {
                continue;
            }
            let l = self.compute_level(slot);
            if l != self.level[slot as usize] {
                self.level[slot as usize] = l;
                let g = self.slots[slot as usize];
                for &o in g.outputs() {
                    if o.is_const() || (o.0 as usize) >= self.num_nets as usize {
                        continue;
                    }
                    // Only propagate through nets this slot actually
                    // drives per the driver table (multi-driven nets
                    // keep the recorded driver's level).
                    if self.driver[o.0 as usize] != slot {
                        continue;
                    }
                    for &(s, _) in &self.fanout[o.0 as usize] {
                        work.push(s);
                    }
                }
            }
        }
    }
}

fn touch_gate_nets(g: &Gate, touched: &mut Vec<NetId>) {
    for &i in g.inputs() {
        if !i.is_const() {
            touched.push(i);
        }
    }
    for &o in g.outputs() {
        if !o.is_const() {
            touched.push(o);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::{GateKind, NetlistBuilder};

    fn small() -> Netlist {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a", 2);
        let c = b.input("b", 2);
        let x = b.and2(a[0], c[0]);
        let y = b.xor2(a[1], c[1]);
        let z = b.or2(x, y);
        b.output("o", &[z]);
        b.finish()
    }

    #[test]
    fn mirror_matches_source() {
        let n = small();
        let a = ArenaNetlist::from_netlist(&n);
        assert!(a.matches_netlist(&n));
        assert_eq!(a.to_netlist(), n);
        assert_eq!(a.num_live(), n.gates().len());
        // Fanout/driver tables agree with a direct scan.
        for (slot, g) in a.iter_live() {
            for &o in g.outputs() {
                assert_eq!(a.driver_of(o), Some(slot));
                assert_eq!(a.driver_count(o), 1);
            }
            for (pin, &i) in g.inputs().iter().enumerate() {
                if !i.is_const() {
                    assert!(a.fanout_of(i).contains(&(slot, pin as u8)));
                }
            }
        }
        assert_eq!(a.max_level(), 2);
    }

    #[test]
    fn replace_reuses_free_slots() {
        let n = small();
        let mut a = ArenaNetlist::from_netlist(&n);
        let (slot, g) = a.iter_live().next().map(|(s, g)| (s, *g)).unwrap();
        let d = a.replace_gates(&[slot], &[]);
        assert_eq!(d.removed, vec![slot]);
        assert_eq!(a.num_free(), 1);
        assert_eq!(a.num_live(), n.gates().len() - 1);
        let d2 = a.replace_gates(&[], &[g]);
        assert_eq!(d2.added, vec![slot], "LIFO slot reuse");
        assert_eq!(a.num_free(), 0);
        assert!(a.matches_netlist(&n));
    }

    #[test]
    fn rewire_updates_fanout() {
        let n = small();
        let mut a = ArenaNetlist::from_netlist(&n);
        // Find the OR gate and rewire its second input to net of pin 0.
        let (slot, g) =
            a.iter_live().find(|(_, g)| g.kind == GateKind::Or2).map(|(s, g)| (s, *g)).unwrap();
        let from = g.ins[1];
        let to = g.ins[0];
        let d = a.rewire_input(slot, 1, to);
        assert!(d.touched_nets.contains(&from));
        assert!(d.touched_nets.contains(&to));
        assert!(a.fanout_of(from).iter().all(|&(s, _)| s != slot));
        assert_eq!(a.fanout_of(to).iter().filter(|&&(s, _)| s == slot).count(), 2);
    }

    #[test]
    fn splice_suffix_tracks_netlist() {
        let n = small();
        let mut a = ArenaNetlist::from_netlist(&n);
        // Rebuild a variant that shares the two-gate prefix but ends
        // with a different final gate.
        let mut b = NetlistBuilder::new("t");
        let ai = b.input("a", 2);
        let ci = b.input("b", 2);
        let x = b.and2(ai[0], ci[0]);
        let y = b.xor2(ai[1], ci[1]);
        let z = b.nand2(x, y);
        b.output("o", &[z]);
        let n2 = b.finish();
        let d = a.splice_suffix(&n2, 2);
        assert!(a.matches_netlist(&n2));
        assert_eq!(d.removed.len(), 1);
        assert_eq!(d.added.len(), 1);
        assert!(d.touched_nets.contains(&x) && d.touched_nets.contains(&y));
    }
}
