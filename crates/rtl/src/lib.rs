//! Gate-level RTL generation for RL-MUL.
//!
//! This crate is the reproduction's substitute for the paper's
//! EasyMAC-based RTL generator: it elaborates a
//! [`rlmul_ct::CompressorTree`] into a flattened gate-level netlist —
//! partial-product generator (AND array or radix-4 Modified Booth
//! Encoding), stage-scheduled compressor tree, and a Kogge–Stone
//! carry-propagate adder — and can compose the result into merged
//! MACs and systolic processing-element arrays. A structural
//! Verilog-2001 emitter is provided for interoperability.
//!
//! # Example
//!
//! ```
//! use rlmul_ct::{CompressorTree, PpgKind};
//! use rlmul_rtl::{to_verilog, MultiplierNetlist};
//!
//! let tree = CompressorTree::wallace(8, PpgKind::Mbe)?;
//! let m = MultiplierNetlist::elaborate(&tree)?;
//! let verilog = to_verilog(m.netlist());
//! assert!(verilog.contains("module mul8x8"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]

mod adder;
mod arena;
mod ct_elab;
mod error;
mod inc;
mod lint;
mod mul;
pub mod mutate;
mod netlist;
mod pe_array;
mod pipeline;
mod ppg;
mod quad_elab;
mod verilog;
mod verilog_in;

pub use adder::{add, AdderKind};
pub use arena::{ArenaNetlist, NetlistDelta};
pub use ct_elab::{elaborate_ct, CtRows};
pub use error::RtlError;
pub use inc::IncrementalMultiplier;
pub use lint::{lint, lint_delta, LintIssue, LintReport, LintRule, LintStats, Severity};
pub use mul::MultiplierNetlist;
pub use netlist::{
    BuilderCheckpoint, DffHandle, Gate, GateKind, GateStats, NetId, Netlist, NetlistBuilder, Port,
    CONST0, CONST1,
};
pub use pe_array::{pe_array, PeArrayConfig, PeStyle};
pub use pipeline::{elaborate_pipelined, PipelineCuts};
pub use ppg::{and_ppg, mbe_ppg, merge_mac_addend, PpColumns};
pub use quad_elab::{elaborate_quad_ct, quad_multiplier};
pub use verilog::to_verilog;
pub use verilog_in::{from_verilog, ParseVerilogError};
