//! Carry-propagate adders for the final stage of the multiplier.
//!
//! The default is a Brent–Kung parallel-prefix adder — the
//! area-efficient prefix network synthesis tools favour under relaxed
//! constraints; Kogge–Stone (fast/large) and ripple-carry variants
//! are provided for ablation studies on the CPA's contribution to the
//! critical path and area.

use crate::netlist::{NetId, NetlistBuilder};

/// Adder architecture selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdderKind {
    /// Brent–Kung parallel-prefix adder: `O(n)` prefix nodes at
    /// `2·log₂ n` depth — the area-efficient prefix network synthesis
    /// tools favour under relaxed constraints, and the default here.
    #[default]
    BrentKung,
    /// Kogge–Stone parallel-prefix adder: `O(n log n)` nodes at
    /// `log₂ n` depth (fastest, largest).
    KoggeStone,
    /// Ripple-carry adder, `O(n)` depth.
    RippleCarry,
}

/// Adds two equal-width buses modulo `2^n` (the carry-out is
/// discarded), using the selected architecture.
///
/// # Panics
///
/// Panics if the operand widths differ.
pub fn add(b: &mut NetlistBuilder, x: &[NetId], y: &[NetId], kind: AdderKind) -> Vec<NetId> {
    assert_eq!(x.len(), y.len(), "adder operand widths must match");
    match kind {
        AdderKind::BrentKung => brent_kung(b, x, y),
        AdderKind::KoggeStone => kogge_stone(b, x, y),
        AdderKind::RippleCarry => ripple_carry(b, x, y),
    }
}

/// Generate/propagate preamble shared by the prefix adders.
fn prefix_pg(b: &mut NetlistBuilder, x: &[NetId], y: &[NetId]) -> (Vec<NetId>, Vec<NetId>) {
    let p: Vec<NetId> = x.iter().zip(y).map(|(&a, &c)| b.xor2(a, c)).collect();
    let g: Vec<NetId> = x.iter().zip(y).map(|(&a, &c)| b.and2(a, c)).collect();
    (p, g)
}

/// Sum postamble shared by the prefix adders: `s_j = p_j ⊕ C_{j−1}`
/// where `gg[j]` is the group generate of bits `0..=j`.
fn prefix_sum(b: &mut NetlistBuilder, p: &[NetId], gg: &[NetId]) -> Vec<NetId> {
    let mut sum = Vec::with_capacity(p.len());
    sum.push(p[0]);
    for j in 1..p.len() {
        sum.push(b.xor2(p[j], gg[j - 1]));
    }
    sum
}

/// Brent–Kung prefix addition: a balanced up-sweep (distance-doubling
/// pair combines) followed by a down-sweep filling in the remaining
/// prefixes, using ≈ `2n` prefix nodes.
fn brent_kung(b: &mut NetlistBuilder, x: &[NetId], y: &[NetId]) -> Vec<NetId> {
    let n = x.len();
    if n == 0 {
        return Vec::new();
    }
    let (p, g) = prefix_pg(b, x, y);
    let mut gg = g.clone();
    let mut pp = p.clone();
    let combine =
        |b: &mut NetlistBuilder, gg: &mut Vec<NetId>, pp: &mut Vec<NetId>, j: usize, k: usize| {
            // (g_j, p_j) ∘ (g_k, p_k) with k the lower group.
            let t = b.and2(pp[j], gg[k]);
            gg[j] = b.or2(gg[j], t);
            pp[j] = b.and2(pp[j], pp[k]);
        };
    // Up-sweep.
    let mut d = 0;
    while (1usize << (d + 1)) <= n {
        let step = 1usize << (d + 1);
        let half = 1usize << d;
        let mut j = step - 1;
        while j < n {
            combine(b, &mut gg, &mut pp, j, j - half);
            j += step;
        }
        d += 1;
    }
    // Down-sweep.
    while d > 0 {
        d -= 1;
        let step = 1usize << (d + 1);
        let half = 1usize << d;
        let mut j = step + half - 1;
        while j < n {
            combine(b, &mut gg, &mut pp, j, j - half);
            j += step;
        }
    }
    prefix_sum(b, &p, &gg)
}

/// Kogge–Stone prefix addition: generate/propagate pairs are combined
/// with the associative operator
/// `(g₁, p₁) ∘ (g₀, p₀) = (g₁ ∨ (p₁ ∧ g₀), p₁ ∧ p₀)`
/// over `⌈log₂ n⌉` levels.
fn kogge_stone(b: &mut NetlistBuilder, x: &[NetId], y: &[NetId]) -> Vec<NetId> {
    let n = x.len();
    if n == 0 {
        return Vec::new();
    }
    let (p, g) = prefix_pg(b, x, y);
    let mut gg = g.clone();
    let mut pp = p.clone();
    let mut dist = 1;
    while dist < n {
        let (mut ng, mut np) = (gg.clone(), pp.clone());
        for j in dist..n {
            let t = b.and2(pp[j], gg[j - dist]);
            ng[j] = b.or2(gg[j], t);
            np[j] = b.and2(pp[j], pp[j - dist]);
        }
        gg = ng;
        pp = np;
        dist *= 2;
    }
    prefix_sum(b, &p, &gg)
}

/// Ripple-carry addition from a chain of half/full adders.
fn ripple_carry(b: &mut NetlistBuilder, x: &[NetId], y: &[NetId]) -> Vec<NetId> {
    let mut sum = Vec::with_capacity(x.len());
    let mut carry = None;
    for (&a, &c) in x.iter().zip(y) {
        let (s, co) = match carry {
            None => b.half_adder(a, c),
            Some(ci) => b.full_adder(a, c, ci),
        };
        sum.push(s);
        carry = Some(co);
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::CONST0;

    /// Evaluates a purely combinational single-output-port netlist on
    /// integer stimulus (slow reference evaluator for adder tests).
    fn eval(n: &crate::Netlist, vals: &[(usize, u64)]) -> u64 {
        let mut net = vec![false; n.num_nets() as usize];
        net[1] = true;
        for (pi, &(_, v)) in n.inputs().iter().zip(vals) {
            for (k, &bit) in pi.bits.iter().enumerate() {
                net[bit.0 as usize] = (v >> k) & 1 == 1;
            }
        }
        for g in n.gates() {
            let i: Vec<bool> = g.inputs().iter().map(|&x| net[x.0 as usize]).collect();
            use crate::GateKind::*;
            match g.kind {
                Inv => net[g.outs[0].0 as usize] = !i[0],
                Buf | Dff => net[g.outs[0].0 as usize] = i[0],
                And2 => net[g.outs[0].0 as usize] = i[0] & i[1],
                Or2 => net[g.outs[0].0 as usize] = i[0] | i[1],
                Nand2 => net[g.outs[0].0 as usize] = !(i[0] & i[1]),
                Nor2 => net[g.outs[0].0 as usize] = !(i[0] | i[1]),
                Xor2 => net[g.outs[0].0 as usize] = i[0] ^ i[1],
                Xnor2 => net[g.outs[0].0 as usize] = !(i[0] ^ i[1]),
                Mux2 => net[g.outs[0].0 as usize] = if i[2] { i[1] } else { i[0] },
                HalfAdder => {
                    net[g.outs[0].0 as usize] = i[0] ^ i[1];
                    net[g.outs[1].0 as usize] = i[0] & i[1];
                }
                FullAdder => {
                    net[g.outs[0].0 as usize] = i[0] ^ i[1] ^ i[2];
                    net[g.outs[1].0 as usize] = (i[0] & i[1]) | (i[2] & (i[0] ^ i[1]));
                }
                Compressor42 => {
                    let s1 = i[0] ^ i[1] ^ i[2];
                    net[g.outs[0].0 as usize] = s1 ^ i[3] ^ i[4];
                    net[g.outs[1].0 as usize] = (s1 & i[3]) | (i[4] & (s1 ^ i[3]));
                    net[g.outs[2].0 as usize] = (i[0] & i[1]) | (i[2] & (i[0] ^ i[1]));
                }
            }
        }
        let out = &n.outputs()[0];
        out.bits
            .iter()
            .enumerate()
            .fold(0u64, |acc, (k, &bit)| acc | ((net[bit.0 as usize] as u64) << k))
    }

    fn build(kind: AdderKind, width: usize) -> crate::Netlist {
        let mut b = NetlistBuilder::new("add");
        let x = b.input("x", width);
        let y = b.input("y", width);
        let s = add(&mut b, &x, &y, kind);
        b.output("s", &s);
        b.finish()
    }

    #[test]
    fn kogge_stone_is_exhaustively_correct_at_6_bits() {
        let n = build(AdderKind::KoggeStone, 6);
        for x in 0u64..64 {
            for y in 0u64..64 {
                assert_eq!(eval(&n, &[(0, x), (1, y)]), (x + y) % 64, "{x}+{y}");
            }
        }
    }

    #[test]
    fn brent_kung_is_exhaustively_correct_at_many_widths() {
        // Cover power-of-two and ragged widths (the multiplier uses 2N).
        for w in [1usize, 2, 3, 5, 6, 7, 8] {
            let n = build(AdderKind::BrentKung, w);
            let m = 1u64 << w;
            for x in 0..m {
                for y in 0..m {
                    assert_eq!(eval(&n, &[(0, x), (1, y)]), (x + y) % m, "w={w} {x}+{y}");
                }
            }
        }
    }

    #[test]
    fn brent_kung_uses_fewer_gates_than_kogge_stone() {
        let bk = build(AdderKind::BrentKung, 32);
        let ks = build(AdderKind::KoggeStone, 32);
        assert!(bk.gates().len() < ks.gates().len());
    }

    #[test]
    fn ripple_carry_is_exhaustively_correct_at_6_bits() {
        let n = build(AdderKind::RippleCarry, 6);
        for x in 0u64..64 {
            for y in 0u64..64 {
                assert_eq!(eval(&n, &[(0, x), (1, y)]), (x + y) % 64, "{x}+{y}");
            }
        }
    }

    #[test]
    fn prefix_adder_depth_is_logarithmic() {
        // Depth proxy: gate count levels along x[0] → s[31] must be far
        // below the ripple chain's ~32 full adders.
        let ks = build(AdderKind::KoggeStone, 32);
        let rc = build(AdderKind::RippleCarry, 32);
        assert!(ks.gates().len() > rc.gates().len()); // prefix trades area…
                                                      // …for depth, which STA verifies in the synth crate's tests.
    }

    #[test]
    fn adding_zero_bus_folds_away() {
        let mut b = NetlistBuilder::new("add0");
        let x = b.input("x", 8);
        let zeros = vec![CONST0; 8];
        let s = add(&mut b, &x, &zeros, AdderKind::KoggeStone);
        assert_eq!(s, x);
        b.output("s", &s);
        // Folding leaves only dead group-propagate gates; the sweep
        // removes them.
        assert_eq!(b.finish().sweep().gates().len(), 0);
    }
}
