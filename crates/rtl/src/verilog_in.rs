//! Structural Verilog import.
//!
//! Parses the subset of Verilog-2001 that [`crate::to_verilog`]
//! emits — and that hand-written structural netlists in the same
//! style use: scalar wires, continuous assignments over `~ & | ^ ?:`
//! expressions, multi-bit ports, and a single `always @(posedge clk)`
//! block of non-blocking register assignments. Expressions are
//! decomposed into primitive gates, so a round trip is functionally
//! (not structurally) identical; the LEC crate closes that loop.
//!
//! Constraints (checked, reported as errors):
//! * assignments must appear in dependency order, except register
//!   outputs (`reg` wires), which may be referenced anywhere;
//! * one driver per wire; every referenced wire must be driven.

use crate::netlist::{DffHandle, NetId, Netlist, NetlistBuilder, CONST0, CONST1};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Errors produced by the Verilog reader.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseVerilogError {
    /// 1-based line of the problem (0 when global).
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for ParseVerilogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "verilog parse error (line {}): {}", self.line, self.message)
    }
}

impl Error for ParseVerilogError {}

type PResult<T> = Result<T, ParseVerilogError>;

fn err<T>(line: usize, message: impl Into<String>) -> PResult<T> {
    Err(ParseVerilogError { line, message: message.into() })
}

/// Parses `source` into a [`Netlist`].
///
/// # Errors
///
/// Returns [`ParseVerilogError`] on syntax outside the supported
/// subset, undriven or multiply-driven wires, or out-of-order
/// definitions.
pub fn from_verilog(source: &str) -> Result<Netlist, ParseVerilogError> {
    Reader::new(source)?.run()
}

#[derive(Debug, Clone, PartialEq)]
enum Expr {
    Const(bool),
    Wire(String),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
    Mux(Box<Expr>, Box<Expr>, Box<Expr>), // cond ? then : else
}

struct Reader<'a> {
    lines: Vec<(usize, &'a str)>,
    builder: NetlistBuilder,
    nets: HashMap<String, NetId>,
    regs: HashMap<String, DffHandle>,
    outputs: Vec<(String, usize)>,
    output_bits: HashMap<String, Vec<Option<NetId>>>,
}

impl<'a> Reader<'a> {
    fn new(source: &'a str) -> PResult<Self> {
        let lines: Vec<(usize, &str)> = source
            .lines()
            .enumerate()
            .map(|(i, l)| (i + 1, l.trim()))
            .filter(|(_, l)| !l.is_empty() && !l.starts_with("//"))
            .collect();
        let Some(&(ln, first)) = lines.first() else {
            return err(0, "empty source");
        };
        let Some(rest) = first.strip_prefix("module ") else {
            return err(ln, "expected `module`");
        };
        let name = rest.split(['(', ' ']).next().unwrap_or("").to_owned();
        if name.is_empty() {
            return err(ln, "missing module name");
        }
        Ok(Reader {
            lines,
            builder: NetlistBuilder::new(name),
            nets: HashMap::new(),
            regs: HashMap::new(),
            outputs: Vec::new(),
            output_bits: HashMap::new(),
        })
    }

    fn run(mut self) -> PResult<Netlist> {
        let mut in_always = false;
        let lines = std::mem::take(&mut self.lines);
        for &(ln, line) in &lines {
            if line.starts_with("module ") || line == "endmodule" {
                continue;
            }
            if line.starts_with("always") {
                in_always = true;
                continue;
            }
            if in_always {
                if line.starts_with("end") {
                    in_always = false;
                    continue;
                }
                self.parse_nonblocking(ln, line)?;
                continue;
            }
            if let Some(decl) = line.strip_prefix("input ") {
                self.parse_input(ln, decl)?;
            } else if let Some(decl) = line.strip_prefix("output ") {
                self.parse_output_decl(ln, decl)?;
            } else if let Some(decl) = line.strip_prefix("reg ") {
                let name = decl.trim_end_matches(';').trim().to_owned();
                let (q, handle) = self.builder.dff_uninit();
                self.nets.insert(name.clone(), q);
                self.regs.insert(name, handle);
            } else if line.starts_with("wire ") {
                // Declarations carry no structure; some lines combine
                // `wire nX; assign nX = …` — handle the tail if present.
                if let Some(pos) = line.find("assign") {
                    self.parse_assign(ln, &line[pos..])?;
                }
            } else if line.starts_with("assign ") {
                self.parse_assign(ln, line)?;
            } else {
                return err(ln, format!("unsupported statement: `{line}`"));
            }
        }
        // Register outputs in declaration order.
        let outputs = std::mem::take(&mut self.outputs);
        for (name, width) in outputs {
            let bits = self.output_bits.remove(&name).unwrap_or_default();
            let mut nets = Vec::with_capacity(width);
            for (k, slot) in bits.into_iter().enumerate().take(width) {
                match slot {
                    Some(n) => nets.push(n),
                    None => return err(0, format!("output {name}[{k}] never assigned")),
                }
            }
            self.builder.output(name, &nets);
        }
        let netlist = self.builder.finish();
        netlist.validate().map_err(|m| ParseVerilogError { line: 0, message: m })?;
        Ok(netlist)
    }

    fn parse_width(ln: usize, decl: &str) -> PResult<(usize, String)> {
        // `[hi:0] name;` or `name;`
        let decl = decl.trim_end_matches(';').trim();
        if let Some(rest) = decl.strip_prefix('[') {
            let Some((range, name)) = rest.split_once(']') else {
                return err(ln, "malformed range");
            };
            let Some((hi, lo)) = range.split_once(':') else {
                return err(ln, "malformed range");
            };
            if lo.trim() != "0" {
                return err(ln, "only [N:0] ranges supported");
            }
            let hi: usize = hi
                .trim()
                .parse()
                .map_err(|_| ParseVerilogError { line: ln, message: "bad range bound".into() })?;
            Ok((hi + 1, name.trim().to_owned()))
        } else {
            Ok((1, decl.to_owned()))
        }
    }

    fn parse_input(&mut self, ln: usize, decl: &str) -> PResult<()> {
        let decl = decl.trim();
        if decl.trim_end_matches(';') == "clk" {
            return Ok(()); // implicit global clock
        }
        let (width, name) = Self::parse_width(ln, decl)?;
        let bits = self.builder.input(name.clone(), width);
        for (k, &b) in bits.iter().enumerate() {
            self.nets.insert(format!("{name}[{k}]"), b);
        }
        if width == 1 {
            self.nets.insert(name, bits[0]);
        }
        Ok(())
    }

    fn parse_output_decl(&mut self, ln: usize, decl: &str) -> PResult<()> {
        let (width, name) = Self::parse_width(ln, decl)?;
        self.output_bits.insert(name.clone(), vec![None; width]);
        self.outputs.push((name, width));
        Ok(())
    }

    fn parse_assign(&mut self, ln: usize, line: &str) -> PResult<()> {
        let body = line
            .strip_prefix("assign")
            .ok_or_else(|| ParseVerilogError { line: ln, message: "expected assign".into() })?
            .trim()
            .trim_end_matches(';');
        let Some((lhs, rhs)) = body.split_once('=') else {
            return err(ln, "assign without `=`");
        };
        let expr = parse_expr(ln, rhs.trim())?;
        let net = self.lower(ln, &expr)?;
        let lhs = lhs.trim();
        if let Some((port, idx)) = parse_indexed(lhs) {
            if let Some(slots) = self.output_bits.get_mut(port) {
                let slot = slots.get_mut(idx).ok_or_else(|| ParseVerilogError {
                    line: ln,
                    message: format!("output index {idx} out of range"),
                })?;
                if slot.is_some() {
                    return err(ln, format!("output {port}[{idx}] multiply driven"));
                }
                *slot = Some(net);
                return Ok(());
            }
            return err(ln, format!("assignment to unknown port bit `{lhs}`"));
        }
        if self.nets.insert(lhs.to_owned(), net).is_some() {
            return err(ln, format!("wire `{lhs}` multiply driven"));
        }
        Ok(())
    }

    fn parse_nonblocking(&mut self, ln: usize, line: &str) -> PResult<()> {
        let body = line.trim_end_matches(';');
        let Some((lhs, rhs)) = body.split_once("<=") else {
            return err(ln, "expected non-blocking assignment");
        };
        let name = lhs.trim();
        let Some(&handle) = self.regs.get(name) else {
            return err(ln, format!("`{name}` is not a declared reg"));
        };
        let expr = parse_expr(ln, rhs.trim())?;
        let net = self.lower(ln, &expr)?;
        self.builder.drive_dff(handle, net);
        Ok(())
    }

    fn lower(&mut self, ln: usize, e: &Expr) -> PResult<NetId> {
        Ok(match e {
            Expr::Const(false) => CONST0,
            Expr::Const(true) => CONST1,
            Expr::Wire(name) => match self.nets.get(name) {
                Some(&n) => n,
                None => return err(ln, format!("wire `{name}` used before definition")),
            },
            Expr::Not(a) => {
                let a = self.lower(ln, a)?;
                self.builder.inv(a)
            }
            Expr::And(a, b) => {
                let (a, b) = (self.lower(ln, a)?, self.lower(ln, b)?);
                self.builder.and2(a, b)
            }
            Expr::Or(a, b) => {
                let (a, b) = (self.lower(ln, a)?, self.lower(ln, b)?);
                self.builder.or2(a, b)
            }
            Expr::Xor(a, b) => {
                let (a, b) = (self.lower(ln, a)?, self.lower(ln, b)?);
                self.builder.xor2(a, b)
            }
            Expr::Mux(c, t, f) => {
                let (c, t, f) = (self.lower(ln, c)?, self.lower(ln, t)?, self.lower(ln, f)?);
                self.builder.mux2(f, t, c)
            }
        })
    }
}

fn parse_indexed(s: &str) -> Option<(&str, usize)> {
    let (name, rest) = s.split_once('[')?;
    let idx = rest.strip_suffix(']')?.parse().ok()?;
    Some((name.trim(), idx))
}

/// Recursive-descent expression parser.
/// Precedence (loosest first): `?:`, `|`, `^`, `&`, `~`, primary.
fn parse_expr(ln: usize, s: &str) -> PResult<Expr> {
    let tokens = tokenize(ln, s)?;
    let mut p = Parser { ln, tokens, pos: 0 };
    let e = p.ternary()?;
    if p.pos != p.tokens.len() {
        return err(ln, format!("trailing tokens in expression `{s}`"));
    }
    Ok(e)
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Lit(bool),
    Op(char), // ~ & | ^ ? : ( )
}

fn tokenize(ln: usize, s: &str) -> PResult<Vec<Tok>> {
    let mut out = Vec::new();
    let mut chars = s.char_indices().peekable();
    while let Some(&(i, c)) = chars.peek() {
        match c {
            ' ' | '\t' => {
                chars.next();
            }
            '~' | '&' | '|' | '^' | '?' | ':' | '(' | ')' => {
                out.push(Tok::Op(c));
                chars.next();
            }
            '1' if s[i..].starts_with("1'b") => {
                let bit = s.as_bytes().get(i + 3).copied();
                match bit {
                    Some(b'0') => out.push(Tok::Lit(false)),
                    Some(b'1') => out.push(Tok::Lit(true)),
                    _ => return err(ln, "bad literal"),
                }
                for _ in 0..4 {
                    chars.next();
                }
            }
            c if c.is_ascii_alphanumeric() || c == '_' || c == '[' => {
                let mut ident = String::new();
                while let Some(&(_, c)) = chars.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' || c == '[' || c == ']' {
                        ident.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(Tok::Ident(ident));
            }
            other => return err(ln, format!("unexpected character `{other}`")),
        }
    }
    Ok(out)
}

struct Parser {
    ln: usize,
    tokens: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos)
    }

    fn eat_op(&mut self, c: char) -> bool {
        if self.peek() == Some(&Tok::Op(c)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn ternary(&mut self) -> PResult<Expr> {
        let cond = self.or_expr()?;
        if self.eat_op('?') {
            let then = self.ternary()?;
            if !self.eat_op(':') {
                return err(self.ln, "ternary missing `:`");
            }
            let els = self.ternary()?;
            return Ok(Expr::Mux(Box::new(cond), Box::new(then), Box::new(els)));
        }
        Ok(cond)
    }

    fn or_expr(&mut self) -> PResult<Expr> {
        let mut e = self.xor_expr()?;
        while self.eat_op('|') {
            let rhs = self.xor_expr()?;
            e = Expr::Or(Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn xor_expr(&mut self) -> PResult<Expr> {
        let mut e = self.and_expr()?;
        while self.eat_op('^') {
            let rhs = self.and_expr()?;
            e = Expr::Xor(Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn and_expr(&mut self) -> PResult<Expr> {
        let mut e = self.unary()?;
        while self.eat_op('&') {
            let rhs = self.unary()?;
            e = Expr::And(Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn unary(&mut self) -> PResult<Expr> {
        if self.eat_op('~') {
            return Ok(Expr::Not(Box::new(self.unary()?)));
        }
        self.primary()
    }

    fn primary(&mut self) -> PResult<Expr> {
        match self.peek().cloned() {
            Some(Tok::Op('(')) => {
                self.pos += 1;
                let e = self.ternary()?;
                if !self.eat_op(')') {
                    return err(self.ln, "missing `)`");
                }
                Ok(e)
            }
            Some(Tok::Ident(name)) => {
                self.pos += 1;
                Ok(Expr::Wire(name))
            }
            Some(Tok::Lit(b)) => {
                self.pos += 1;
                Ok(Expr::Const(b))
            }
            other => err(self.ln, format!("unexpected token {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_tiny_module() {
        let src = "\
module toy (a, y);
  input [1:0] a;
  output [0:0] y;
  wire n2; assign n2 = a[0];
  wire n3; assign n3 = a[1];
  wire n4;
  assign n4 = n2 ^ ~n3;
  assign y[0] = n4;
endmodule";
        let n = from_verilog(src).unwrap();
        assert_eq!(n.name(), "toy");
        assert_eq!(n.inputs().len(), 1);
        assert_eq!(n.outputs()[0].bits.len(), 1);
    }

    #[test]
    fn rejects_use_before_definition() {
        let src = "\
module bad (a, y);
  input [0:0] a;
  output [0:0] y;
  wire n2; assign n2 = a[0];
  wire n9;
  assign n9 = n8 & n2;
  assign y[0] = n9;
endmodule";
        let e = from_verilog(src).unwrap_err();
        assert!(e.message.contains("before definition"), "{e}");
    }

    #[test]
    fn rejects_double_drivers() {
        let src = "\
module bad (a, y);
  input [0:0] a;
  output [0:0] y;
  wire n2; assign n2 = a[0];
  assign n2 = ~a[0];
  assign y[0] = n2;
endmodule";
        assert!(from_verilog(src).is_err());
    }

    #[test]
    fn registers_round_trip_through_always_block() {
        let src = "\
module seq (a, y);
  input [0:0] a;
  output [0:0] y;
  reg n5;
  wire n2; assign n2 = a[0];
  wire n3;
  assign n3 = n5 ^ n2;
  assign y[0] = n3;
  always @(posedge clk) begin
    n5 <= n2;
  end
endmodule";
        let n = from_verilog(src).unwrap();
        assert!(n.is_sequential());
        n.validate().unwrap();
    }
}
