//! Seeded structural defects and functional mutations.
//!
//! Verification tooling is only trustworthy when it has been watched
//! catching bugs, so this module manufactures them on demand: given a
//! correct netlist it produces a deliberately broken sibling with one
//! precise defect. Functional mutations ([`flip_gate_kind`],
//! [`swap_gate_inputs`], [`replace_gate_input`]) keep the netlist
//! structurally well-formed but change its function — refutation
//! fodder for the SAT equivalence checker. Structural defects
//! ([`duplicate_gate`], [`float_gate_input`], [`introduce_loop`],
//! [`clear_port`], [`corrupt_port_net`], [`rename_port_to_clash`])
//! break the
//! IR's invariants in ways the lint catalogue must flag.
//!
//! All constructors copy the input; intentionally-broken outputs
//! bypass the builder (and its debug validation) entirely.

use crate::arena::{ArenaNetlist, NetlistDelta};
use crate::netlist::{GateKind, NetId, Netlist, Port, CONST0};

/// Replaces a gate's function with a near-miss partner
/// (XOR ↔ XNOR, AND ↔ OR, NAND ↔ NOR, HA kept, FA → HA-like, …),
/// preserving pin counts. Returns `None` for kinds with no same-arity
/// partner.
pub fn flip_gate_kind(netlist: &Netlist, gate: usize) -> Option<Netlist> {
    let flipped = match netlist.gates()[gate].kind {
        GateKind::Inv => GateKind::Buf,
        GateKind::Buf => GateKind::Inv,
        GateKind::And2 => GateKind::Or2,
        GateKind::Or2 => GateKind::And2,
        GateKind::Nand2 => GateKind::Nor2,
        GateKind::Nor2 => GateKind::Nand2,
        GateKind::Xor2 => GateKind::Xnor2,
        GateKind::Xnor2 => GateKind::Xor2,
        _ => return None,
    };
    let mut out = netlist.clone();
    out.gates_mut()[gate].kind = flipped;
    Some(out)
}

/// Swaps two input pins of a gate. Function-changing for asymmetric
/// gates (4:2 compressor `x1 ↔ cin`, mux data/select); a no-op in
/// function for fully symmetric ones (plain FA/HA sum+carry).
pub fn swap_gate_inputs(netlist: &Netlist, gate: usize, a: usize, b: usize) -> Netlist {
    let mut out = netlist.clone();
    out.gates_mut()[gate].ins.swap(a, b);
    out
}

/// Reconnects one input pin of a gate to `with` — e.g. dropping a
/// carry wire by grounding the carry-in of a downstream compressor.
pub fn replace_gate_input(netlist: &Netlist, gate: usize, pin: usize, with: NetId) -> Netlist {
    let mut out = netlist.clone();
    out.gates_mut()[gate].ins[pin] = with;
    out
}

/// Appends a copy of `gate`, so every net it drives gains a second
/// driver (a multi-driven lint error).
pub fn duplicate_gate(netlist: &Netlist, gate: usize) -> Netlist {
    let mut out = netlist.clone();
    let g = out.gates()[gate];
    out.gates_mut().push(g);
    out
}

/// Points one input pin of a gate at a freshly allocated net that
/// nothing drives (an undriven-net lint error).
pub fn float_gate_input(netlist: &Netlist, gate: usize, pin: usize) -> Netlist {
    let mut out = netlist.clone();
    let floating = NetId(out.num_nets());
    out.bump_num_nets();
    out.gates_mut()[gate].ins[pin] = floating;
    out
}

/// Rewires input pin 0 of `gate` to that gate's own first output,
/// closing a one-gate combinational loop.
pub fn introduce_loop(netlist: &Netlist, gate: usize) -> Netlist {
    let own_output = netlist.gates()[gate].outs[0];
    replace_gate_input(netlist, gate, 0, own_output)
}

/// Rewires `later` gate's output into `earlier` gate's input pin 0,
/// closing a multi-gate combinational cycle when `earlier`'s cone
/// feeds `later`.
pub fn cross_wire(netlist: &Netlist, earlier: usize, later: usize) -> Netlist {
    let back_edge = netlist.gates()[later].outs[0];
    replace_gate_input(netlist, earlier, 0, back_edge)
}

/// Empties an output port's bit list (a port-width lint error).
pub fn clear_port(netlist: &Netlist, port: usize) -> Netlist {
    let mut out = netlist.clone();
    out.outputs_mut()[port].bits.clear();
    out
}

/// Points one bit of an output port at a net id beyond the netlist's
/// net count (a port-width lint error).
pub fn corrupt_port_net(netlist: &Netlist, port: usize, bit: usize) -> Netlist {
    let mut out = netlist.clone();
    let bogus = NetId(out.num_nets() + 41);
    out.outputs_mut()[port].bits[bit] = bogus;
    out
}

/// Renames an output port to collide with the first input port's
/// name (a duplicate-name lint error).
pub fn rename_port_to_clash(netlist: &Netlist, port: usize) -> Netlist {
    let mut out = netlist.clone();
    let clash = out.inputs()[0].name.clone();
    out.outputs_mut()[port].name = clash;
    out
}

/// Finds the index of the first gate of `kind`, if any.
pub fn find_gate(netlist: &Netlist, kind: GateKind) -> Option<usize> {
    netlist.gates().iter().position(|g| g.kind == kind)
}

/// Finds the first `(consumer_gate, pin)` whose input net is a carry
/// output (pin ≥ 1) of an upstream HA/FA/4:2 compressor — the wire a
/// [`replace_gate_input`]`(…, CONST0)` mutation "drops".
pub fn find_carry_wire(netlist: &Netlist) -> Option<(usize, usize)> {
    let mut carry_nets = vec![false; netlist.num_nets() as usize];
    for g in netlist.gates() {
        if matches!(g.kind, GateKind::HalfAdder | GateKind::FullAdder | GateKind::Compressor42) {
            for &c in &g.outputs()[1..] {
                carry_nets[c.0 as usize] = true;
            }
        }
    }
    for (i, g) in netlist.gates().iter().enumerate() {
        for (pin, &inp) in g.inputs().iter().enumerate() {
            if carry_nets[inp.0 as usize] {
                return Some((i, pin));
            }
        }
    }
    None
}

/// Drops the first carry wire found by [`find_carry_wire`], grounding
/// the consumer pin. Returns `None` when the netlist has no
/// compressor carries.
pub fn drop_carry_wire(netlist: &Netlist) -> Option<Netlist> {
    let (gate, pin) = find_carry_wire(netlist)?;
    Some(replace_gate_input(netlist, gate, pin, CONST0))
}

// ---------------------------------------------------------------------------
// Delta-API injection
//
// The same defect catalogue, expressed as in-place [`ArenaNetlist`]
// edits. Each injector returns the [`NetlistDelta`] of its edit, so
// the incremental linter ([`crate::lint_delta`]) can be exercised
// against exactly the defects the full pass is known to catch — the
// clone-based constructors above stay as the oracle.
// ---------------------------------------------------------------------------

/// Delta edition of [`duplicate_gate`]: inserts a copy of the gate in
/// `slot`, making every net it drives multi-driven.
///
/// # Panics
///
/// Panics if `slot` is not live.
pub fn inject_duplicate_gate(arena: &mut ArenaNetlist, slot: u32) -> NetlistDelta {
    let g = *arena.gate(slot).expect("inject_duplicate_gate: live slot");
    arena.replace_gates(&[], &[g])
}

/// Delta edition of [`float_gate_input`]: rewires one input pin to a
/// freshly allocated net nothing drives.
pub fn inject_float_input(arena: &mut ArenaNetlist, slot: u32, pin: u8) -> NetlistDelta {
    let floating = arena.fresh_net();
    arena.rewire_input(slot, pin, floating)
}

/// Delta edition of [`introduce_loop`]: feeds a gate's own output
/// back into its input pin 0.
pub fn inject_loop(arena: &mut ArenaNetlist, slot: u32) -> NetlistDelta {
    let own = arena.gate(slot).expect("inject_loop: live slot").outs[0];
    arena.rewire_input(slot, 0, own)
}

/// Delta edition of [`cross_wire`]: wires `later`'s first output back
/// into `earlier`'s input pin 0.
pub fn inject_cross_wire(arena: &mut ArenaNetlist, earlier: u32, later: u32) -> NetlistDelta {
    let back = arena.gate(later).expect("inject_cross_wire: live slot").outs[0];
    arena.rewire_input(earlier, 0, back)
}

/// Delta edition of [`flip_gate_kind`]: swaps the gate in `slot` for
/// its near-miss partner in place (slot number preserved). Returns
/// `None` for kinds with no same-arity partner.
pub fn inject_flip_gate_kind(arena: &mut ArenaNetlist, slot: u32) -> Option<NetlistDelta> {
    let mut g = *arena.gate(slot)?;
    g.kind = match g.kind {
        GateKind::Inv => GateKind::Buf,
        GateKind::Buf => GateKind::Inv,
        GateKind::And2 => GateKind::Or2,
        GateKind::Or2 => GateKind::And2,
        GateKind::Nand2 => GateKind::Nor2,
        GateKind::Nor2 => GateKind::Nand2,
        GateKind::Xor2 => GateKind::Xnor2,
        GateKind::Xnor2 => GateKind::Xor2,
        _ => return None,
    };
    let delta = arena.replace_gates(&[slot], &[g]);
    debug_assert_eq!(delta.added, vec![slot], "LIFO free-list puts the swap back in place");
    Some(delta)
}

/// Delta edition of [`clear_port`]: empties one output port's bits.
pub fn inject_clear_port(arena: &mut ArenaNetlist, port: usize) -> NetlistDelta {
    let mut outputs: Vec<Port> = arena.outputs().to_vec();
    outputs[port].bits.clear();
    arena.set_outputs(outputs)
}

/// Delta edition of [`corrupt_port_net`]: points one output bit at a
/// net id beyond the arena's net count.
pub fn inject_corrupt_port_net(arena: &mut ArenaNetlist, port: usize, bit: usize) -> NetlistDelta {
    let mut outputs: Vec<Port> = arena.outputs().to_vec();
    outputs[port].bits[bit] = NetId(arena.num_nets() + 41);
    arena.set_outputs(outputs)
}

/// Delta edition of [`rename_port_to_clash`]: renames an output port
/// to collide with the first input port.
pub fn inject_rename_port_to_clash(arena: &mut ArenaNetlist, port: usize) -> NetlistDelta {
    let clash = arena.inputs()[0].name.clone();
    let mut outputs: Vec<Port> = arena.outputs().to_vec();
    outputs[port].name = clash;
    arena.set_outputs(outputs)
}

/// Delta edition of [`drop_carry_wire`]: grounds the first consumer
/// pin fed by a compressor carry. Returns `None` when there is none.
/// The defect is functional, not structural — lint must stay clean.
pub fn inject_drop_carry_wire(arena: &mut ArenaNetlist) -> Option<NetlistDelta> {
    let mut carry_nets = vec![false; arena.num_nets() as usize];
    for (_, g) in arena.iter_live() {
        if matches!(g.kind, GateKind::HalfAdder | GateKind::FullAdder | GateKind::Compressor42) {
            for &c in &g.outputs()[1..] {
                carry_nets[c.0 as usize] = true;
            }
        }
    }
    let hit = arena.iter_live().find_map(|(slot, g)| {
        g.inputs().iter().position(|i| carry_nets[i.0 as usize]).map(|pin| (slot, pin as u8))
    })?;
    Some(arena.rewire_input(hit.0, hit.1, CONST0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::{lint, LintRule};
    use crate::netlist::NetlistBuilder;

    fn adder4() -> Netlist {
        let mut b = NetlistBuilder::new("adder4");
        let x = b.input("x", 4);
        let y = b.input("y", 4);
        let mut carry = CONST0;
        let mut sum = Vec::new();
        for k in 0..4 {
            let (s, c) = b.full_adder(x[k], y[k], carry);
            sum.push(s);
            carry = c;
        }
        sum.push(carry);
        b.output("s", &sum);
        b.finish()
    }

    #[test]
    fn duplicate_gate_is_multi_driven() {
        let n = adder4();
        let bad = duplicate_gate(&n, 1);
        let r = lint(&bad);
        assert!(r.count(LintRule::MultiDriven) >= 1, "{}", r.render());
        assert!(!r.is_clean());
        assert!(lint(&n).is_clean());
    }

    #[test]
    fn float_gate_input_is_undriven() {
        let bad = float_gate_input(&adder4(), 2, 0);
        let r = lint(&bad);
        assert_eq!(r.count(LintRule::UndrivenNet), 1, "{}", r.render());
    }

    #[test]
    fn introduce_loop_is_detected_as_scc() {
        let bad = introduce_loop(&adder4(), 1);
        let r = lint(&bad);
        assert!(r.count(LintRule::CombinationalLoop) >= 1, "{}", r.render());
    }

    #[test]
    fn cross_wire_makes_a_multi_gate_loop() {
        let n = adder4();
        // Gate 0's carry feeds gate 1 (ripple chain); wiring gate 1's
        // output back into gate 0 closes a two-gate cycle.
        let bad = cross_wire(&n, 0, 1);
        let r = lint(&bad);
        assert!(r.count(LintRule::CombinationalLoop) >= 1, "{}", r.render());
        let issue = r
            .issues()
            .iter()
            .find(|i| i.rule == LintRule::CombinationalLoop)
            .expect("loop issue present");
        assert!(issue.message.contains("gates"), "{}", issue.message);
    }

    #[test]
    fn port_defects_are_width_and_name_errors() {
        let n = adder4();
        assert_eq!(lint(&clear_port(&n, 0)).count(LintRule::PortWidth), 1);
        assert_eq!(lint(&corrupt_port_net(&n, 0, 2)).count(LintRule::PortWidth), 1);
        assert_eq!(lint(&rename_port_to_clash(&n, 0)).count(LintRule::DuplicateName), 1);
    }

    #[test]
    fn carry_wires_are_found_and_droppable() {
        let n = adder4();
        let (gate, pin) = find_carry_wire(&n).expect("ripple chain has carries");
        assert!(pin < n.gates()[gate].kind.num_inputs());
        let dropped = drop_carry_wire(&n).expect("droppable");
        // Still structurally clean — the defect is functional.
        assert!(lint(&dropped).is_clean());
        assert_ne!(&dropped, &n);
    }

    #[test]
    fn delta_injection_matches_full_lint_over_the_catalogue() {
        use crate::lint::lint_delta;
        // adder4 lints fully clean, so every finding on the mutated
        // netlist is attributable to the injected delta — the exact
        // regime where lint_delta must agree with the full pass,
        // rule for rule.
        let base = adder4();
        type Injector = fn(&mut ArenaNetlist) -> NetlistDelta;
        let catalogue: &[(&str, Injector)] = &[
            ("duplicate", |a| inject_duplicate_gate(a, 1)),
            ("float", |a| inject_float_input(a, 2, 0)),
            ("loop", |a| inject_loop(a, 1)),
            ("cross", |a| inject_cross_wire(a, 0, 1)),
            ("clear-port", |a| inject_clear_port(a, 0)),
            ("corrupt-port", |a| inject_corrupt_port_net(a, 0, 2)),
            ("rename", |a| inject_rename_port_to_clash(a, 0)),
            ("drop-carry", |a| inject_drop_carry_wire(a).expect("ripple chain has carries")),
        ];
        for (name, inject) in catalogue {
            let mut arena = ArenaNetlist::from_netlist(&base);
            let delta = inject(&mut arena);
            let incremental = lint_delta(&arena, &delta);
            let full = lint(&arena.to_netlist());
            for rule in LintRule::ALL {
                assert_eq!(
                    incremental.count(rule),
                    full.count(rule),
                    "{name}: rule {rule} differs\nincremental: {}\nfull: {}",
                    incremental.render(),
                    full.render()
                );
            }
        }
    }

    #[test]
    fn delta_flip_is_functional_only() {
        let mut b = NetlistBuilder::new("g");
        let x = b.input("x", 2);
        let y = b.xor2(x[0], x[1]);
        b.output("y", &[y]);
        let n = b.finish();
        let mut arena = ArenaNetlist::from_netlist(&n);
        let delta = inject_flip_gate_kind(&mut arena, 0).expect("xor flips");
        assert_eq!(arena.gate(0).unwrap().kind, GateKind::Xnor2);
        let r = crate::lint::lint_delta(&arena, &delta);
        assert!(r.is_clean(), "{}", r.render());
        assert!(lint(&arena.to_netlist()).is_clean());
    }

    #[test]
    fn flip_gate_kind_covers_simple_gates() {
        let mut b = NetlistBuilder::new("g");
        let x = b.input("x", 2);
        let y = b.xor2(x[0], x[1]);
        b.output("y", &[y]);
        let n = b.finish();
        let flipped = flip_gate_kind(&n, 0).expect("xor flips");
        assert_eq!(flipped.gates()[0].kind, GateKind::Xnor2);
        assert!(lint(&flipped).is_clean());
    }
}
