//! Elaboration of 4:2-compressor reduction schedules
//! (see [`rlmul_ct::QuadSchedule`]).
//!
//! Same-stage cout chains run LSB→MSB: each 4:2's `cout` is queued
//! for the next column and consumed as `cin` by its first
//! `n42_with_cin` compressors — no combinational loop arises because
//! `cout` never depends on `cin`.

use crate::adder::{add, AdderKind};
use crate::netlist::{NetId, Netlist, NetlistBuilder, CONST0};
use crate::ppg::{and_ppg, mbe_ppg, merge_mac_addend, PpColumns};
use crate::RtlError;
use rlmul_ct::{PpProfile, PpgKind, QuadSchedule};
use std::collections::VecDeque;

/// Reduces `cols` according to `schedule`, returning the final two
/// rows per column.
///
/// # Errors
///
/// Returns [`RtlError::ResidualMismatch`] if a column fails to end at
/// one or two rows (unreachable for schedules built by
/// [`QuadSchedule::build`]).
pub fn elaborate_quad_ct(
    b: &mut NetlistBuilder,
    schedule: &QuadSchedule,
    cols: PpColumns,
) -> Result<(Vec<NetId>, Vec<NetId>), RtlError> {
    let ncols = schedule.num_columns();
    debug_assert_eq!(cols.len(), ncols);
    let mut rows: Vec<VecDeque<NetId>> = cols.into_iter().map(Into::into).collect();
    for stage in 0..schedule.stage_count() {
        let mut next: Vec<VecDeque<NetId>> = vec![VecDeque::new(); ncols];
        let mut couts: Vec<VecDeque<NetId>> = vec![VecDeque::new(); ncols + 1];
        for j in 0..ncols {
            let plan = schedule.at(stage, j);
            let avail = &mut rows[j];
            for q in 0..plan.n42 {
                let xs = [
                    avail.pop_front().expect("schedule guarantees 4 rows"),
                    avail.pop_front().expect("schedule guarantees 4 rows"),
                    avail.pop_front().expect("schedule guarantees 4 rows"),
                    avail.pop_front().expect("schedule guarantees 4 rows"),
                ];
                let cin = if q < plan.n42_with_cin {
                    couts[j].pop_front().expect("schedule counts cins")
                } else {
                    CONST0
                };
                let (sum, carry, cout) = b.compressor42(xs, cin);
                next[j].push_back(sum);
                if j + 1 < ncols {
                    next[j + 1].push_back(carry);
                    couts[j + 1].push_back(cout);
                }
            }
            // Unconsumed same-stage couts become plain rows of this
            // column, eligible for the cleanup compressors.
            let leftover_couts = std::mem::take(&mut couts[j]);
            avail.extend(leftover_couts);
            for _ in 0..plan.n32 {
                let (x, y, z) = (
                    avail.pop_front().expect("schedule guarantees 3 rows"),
                    avail.pop_front().expect("schedule guarantees 3 rows"),
                    avail.pop_front().expect("schedule guarantees 3 rows"),
                );
                let (sum, carry) = b.full_adder(x, y, z);
                next[j].push_back(sum);
                if j + 1 < ncols {
                    next[j + 1].push_back(carry);
                }
            }
            for _ in 0..plan.n22 {
                let (x, y) = (
                    avail.pop_front().expect("schedule guarantees 2 rows"),
                    avail.pop_front().expect("schedule guarantees 2 rows"),
                );
                let (sum, carry) = b.half_adder(x, y);
                next[j].push_back(sum);
                if j + 1 < ncols {
                    next[j + 1].push_back(carry);
                }
            }
            // Pass-through rows.
            let rest = std::mem::take(avail);
            next[j].extend(rest);
        }
        rows = next;
    }
    let mut row0 = Vec::with_capacity(ncols);
    let mut row1 = Vec::with_capacity(ncols);
    for (j, col) in rows.into_iter().enumerate() {
        if col.len() > 2 {
            return Err(RtlError::ResidualMismatch { column: j, expected: 2, got: col.len() });
        }
        let mut it = col.into_iter();
        row0.push(it.next().unwrap_or(CONST0));
        row1.push(it.next().unwrap_or(CONST0));
    }
    Ok((row0, row1))
}

/// Builds a complete multiplier / merged MAC whose compressor tree
/// uses 4:2 compressors (plus 3:2/2:2 cleanup).
///
/// # Errors
///
/// Propagates profile, schedule and elaboration errors.
pub fn quad_multiplier(bits: usize, kind: PpgKind, cpa: AdderKind) -> Result<Netlist, RtlError> {
    let profile = PpProfile::new(bits, kind)?;
    let schedule = QuadSchedule::build(&profile)?;
    let name = format!("{}{}x{}_q42", if kind.is_mac() { "mac" } else { "mul" }, bits, bits);
    let mut b = NetlistBuilder::new(name);
    let a = b.input("a", bits);
    let m = b.input("b", bits);
    let mut cols = match kind.base() {
        PpgKind::Mbe => mbe_ppg(&mut b, &a, &m),
        _ => and_ppg(&mut b, &a, &m),
    };
    if kind.is_mac() {
        let c = b.input("c", 2 * bits);
        merge_mac_addend(&mut cols, &c);
    }
    let (row0, row1) = elaborate_quad_ct(&mut b, &schedule, cols)?;
    let p = add(&mut b, &row0, &row1, cpa);
    b.output("p", &p);
    Ok(b.finish().sweep())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quad_multiplier_elaborates_and_validates() {
        for bits in [4usize, 8, 16] {
            let n = quad_multiplier(bits, PpgKind::And, AdderKind::default()).unwrap();
            n.validate().unwrap_or_else(|e| panic!("{bits}: {e}"));
            if bits >= 8 {
                assert!(n.stats().count("COMP42") > 0, "{bits}-bit should place 4:2s");
            }
        }
    }

    #[test]
    fn elaborated_gate_counts_match_schedule_totals() {
        // COMP42 instances (minus those folded by constant inputs)
        // never exceed the schedule's 4:2 total, and the residuals
        // form exactly two CPA rows.
        let profile = PpProfile::new(16, PpgKind::And).unwrap();
        let schedule = QuadSchedule::build(&profile).unwrap();
        let (n42, _, _) = schedule.totals();
        let n = quad_multiplier(16, PpgKind::And, AdderKind::default()).unwrap();
        let placed = n.stats().count("COMP42") as u32;
        assert!(placed <= n42);
        assert!(placed >= n42 / 2, "folding removed too many: {placed} of {n42}");
    }

    #[test]
    fn quad_mac_elaborates() {
        let n = quad_multiplier(8, PpgKind::MacAnd, AdderKind::default()).unwrap();
        n.validate().unwrap();
    }

    #[test]
    fn quad_mbe_elaborates() {
        let n = quad_multiplier(8, PpgKind::Mbe, AdderKind::default()).unwrap();
        n.validate().unwrap();
    }
}
