//! Incremental multiplier elaboration.
//!
//! [`IncrementalMultiplier`] keeps a live [`NetlistBuilder`] plus
//! per-column resume checkpoints so that re-targeting to a new
//! compressor tree replays only the columns at and above the first
//! changed one. Legalization propagates strictly toward the MSB
//! (`rlmul_ct::legalize` sweeps from `column + 1` upward), and
//! elaboration emits gates column-major with deterministic net-id
//! allocation, so the replayed netlist is *equal* — not merely
//! isomorphic — to what a from-scratch [`MultiplierNetlist`] build
//! would produce. Bit-identical downstream synthesis numbers follow
//! for free from that equality.
//!
//! Each retarget also maintains an [`ArenaNetlist`] mirror via
//! [`ArenaNetlist::splice_suffix`] and exposes the resulting
//! [`NetlistDelta`], which incremental lint/map/size/STA consume.

use crate::adder::{add, AdderKind};
use crate::arena::{ArenaNetlist, NetlistDelta};
use crate::ct_elab::{elaborate_ct_span, CtState};
use crate::netlist::{BuilderCheckpoint, NetId, Netlist, NetlistBuilder};
use crate::ppg::{and_ppg, mbe_ppg, merge_mac_addend};
use crate::RtlError;
use rlmul_ct::{CompressorTree, PpgKind};

/// Resume point at the top of one compressor-tree column.
#[derive(Debug, Clone)]
struct ColumnCheckpoint {
    builder: BuilderCheckpoint,
    /// Carries pending into this column, indexed by stage.
    carry: Vec<Vec<NetId>>,
}

/// A multiplier netlist that re-elaborates in time proportional to
/// the edit when its compressor tree changes.
///
/// ```
/// use rlmul_ct::{CompressorTree, PpgKind};
/// use rlmul_rtl::{IncrementalMultiplier, MultiplierNetlist};
///
/// let tree = CompressorTree::wallace(8, PpgKind::And)?;
/// let mut inc = IncrementalMultiplier::new(&tree)?;
/// let next = tree.apply_action(tree.valid_actions()[0])?;
/// let delta = inc.retarget(&next)?;
/// assert!(!delta.added.is_empty());
/// // The incremental netlist equals a from-scratch elaboration.
/// let fresh = MultiplierNetlist::elaborate(&next)?.into_netlist();
/// assert_eq!(*inc.netlist(), fresh);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalMultiplier {
    tree: CompressorTree,
    cpa: AdderKind,
    builder: NetlistBuilder,
    /// Partial-product columns (fixed across retargets: the PPG
    /// depends only on the operands, never on the tree).
    cols: Vec<Vec<NetId>>,
    checkpoints: Vec<ColumnCheckpoint>,
    row0: Vec<NetId>,
    row1: Vec<NetId>,
    netlist: Netlist,
    arena: ArenaNetlist,
    last_delta: NetlistDelta,
}

impl IncrementalMultiplier {
    /// Elaborates `tree` from scratch with the default final adder,
    /// recording per-column resume checkpoints.
    ///
    /// # Errors
    ///
    /// Same as [`MultiplierNetlist::elaborate`].
    ///
    /// [`MultiplierNetlist::elaborate`]: crate::MultiplierNetlist::elaborate
    pub fn new(tree: &CompressorTree) -> Result<Self, RtlError> {
        Self::with_adder(tree, AdderKind::default())
    }

    /// Elaborates `tree` from scratch with an explicit final adder.
    ///
    /// # Errors
    ///
    /// Same as [`IncrementalMultiplier::new`].
    pub fn with_adder(tree: &CompressorTree, cpa: AdderKind) -> Result<Self, RtlError> {
        let bits = tree.bits();
        let kind = tree.profile().kind();
        let name = format!("{}{}x{}", if kind.is_mac() { "mac" } else { "mul" }, bits, bits);
        let mut builder = NetlistBuilder::new(name);
        let a = builder.input("a", bits);
        let m = builder.input("b", bits);
        let mut cols = match kind.base() {
            PpgKind::Mbe => mbe_ppg(&mut builder, &a, &m),
            _ => and_ppg(&mut builder, &a, &m),
        };
        if kind.is_mac() {
            let c = builder.input("c", 2 * bits);
            merge_mac_addend(&mut cols, &c);
        }
        let mut checkpoints = Vec::with_capacity(cols.len());
        let mut state = CtState::default();
        elaborate_ct_span(&mut builder, tree, &cols, &mut state, 0, |j, b, carry| {
            debug_assert_eq!(j, checkpoints.len());
            checkpoints.push(ColumnCheckpoint { builder: b.checkpoint(), carry: carry.to_vec() });
        })?;
        let p = add(&mut builder, &state.row0, &state.row1, cpa);
        builder.output("p", &p);
        let netlist = builder.snapshot().sweep();
        let arena = ArenaNetlist::from_netlist(&netlist);
        Ok(IncrementalMultiplier {
            tree: tree.clone(),
            cpa,
            builder,
            cols,
            checkpoints,
            row0: state.row0,
            row1: state.row1,
            netlist,
            arena,
            last_delta: NetlistDelta::default(),
        })
    }

    /// Re-elaborates toward `tree`, replaying only the columns from
    /// the first changed one upward, and splices the arena mirror.
    /// Returns the delta of the *swept* netlist (shared gate prefix
    /// detected by direct comparison, so no liveness reasoning is
    /// baked in).
    ///
    /// The result is guaranteed equal to
    /// `MultiplierNetlist::elaborate_with_adder(tree, cpa)` — debug
    /// builds assert exactly that against a from-scratch rebuild.
    ///
    /// # Errors
    ///
    /// [`RtlError::InvalidParameter`] if `tree` has a different
    /// profile (width or PPG kind) than the one this elaborator was
    /// built for; otherwise the same errors as elaboration.
    pub fn retarget(&mut self, tree: &CompressorTree) -> Result<&NetlistDelta, RtlError> {
        if tree.profile() != self.tree.profile() {
            return Err(RtlError::InvalidParameter {
                what: "retarget requires the same width and PPG kind",
            });
        }
        let old = self.tree.matrix().counts();
        let new = tree.matrix().counts();
        debug_assert_eq!(old.len(), new.len());
        let Some(j_min) = old.iter().zip(new).position(|(a, b)| a != b) else {
            // Same per-column counts ⇒ identical deterministic
            // elaboration; nothing to do.
            self.tree = tree.clone();
            self.last_delta = NetlistDelta::default();
            return Ok(&self.last_delta);
        };

        let obs = rlmul_obs::global();
        // Rewind to the top of column j_min and replay the rest.
        let ck = self.checkpoints[j_min].clone();
        self.builder.rewind(&ck.builder);
        self.checkpoints.truncate(j_min);
        self.row0.truncate(j_min);
        self.row1.truncate(j_min);
        let mut state = CtState {
            carry_arrivals: ck.carry,
            row0: std::mem::take(&mut self.row0),
            row1: std::mem::take(&mut self.row1),
        };
        {
            let _s = obs.span("rtl.retarget_replay");
            let checkpoints = &mut self.checkpoints;
            elaborate_ct_span(
                &mut self.builder,
                tree,
                &self.cols,
                &mut state,
                j_min,
                |j, b, carry| {
                    debug_assert_eq!(j, checkpoints.len());
                    checkpoints
                        .push(ColumnCheckpoint { builder: b.checkpoint(), carry: carry.to_vec() });
                },
            )?;
            let p = add(&mut self.builder, &state.row0, &state.row1, self.cpa);
            self.builder.output("p", &p);
        }
        self.row0 = state.row0;
        self.row1 = state.row1;

        let next = {
            let _s = obs.span("rtl.retarget_sweep");
            self.builder.snapshot().sweep()
        };
        {
            let _s = obs.span("rtl.retarget_splice");
            let shared = shared_gate_prefix(&self.netlist, &next);
            self.last_delta = self.arena.splice_suffix(&next, shared);
        }
        self.netlist = next;
        self.tree = tree.clone();

        #[cfg(debug_assertions)]
        {
            let fresh =
                crate::mul::MultiplierNetlist::elaborate_with_adder(tree, self.cpa)?.into_netlist();
            debug_assert_eq!(self.netlist, fresh, "incremental replay diverged from scratch build");
            debug_assert!(self.arena.matches_netlist(&self.netlist));
        }
        Ok(&self.last_delta)
    }

    /// The current swept netlist (equal to a from-scratch build).
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The arena mirror with fanout/driver/level side-structures.
    pub fn arena(&self) -> &ArenaNetlist {
        &self.arena
    }

    /// The compressor tree the netlist currently realizes.
    pub fn tree(&self) -> &CompressorTree {
        &self.tree
    }

    /// Delta produced by the most recent [`IncrementalMultiplier::retarget`]
    /// (empty before the first retarget or when the tree was unchanged).
    pub fn last_delta(&self) -> &NetlistDelta {
        &self.last_delta
    }
}

/// Length of the longest common gate prefix of two netlists.
fn shared_gate_prefix(a: &Netlist, b: &Netlist) -> usize {
    a.gates().iter().zip(b.gates()).take_while(|(x, y)| x == y).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mul::MultiplierNetlist;

    fn walk(tree: &CompressorTree, steps: usize, seed: &mut u64) -> Vec<CompressorTree> {
        let mut out = Vec::new();
        let mut cur = tree.clone();
        for _ in 0..steps {
            let actions = cur.valid_actions();
            if actions.is_empty() {
                break;
            }
            *seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let a = actions[(*seed >> 33) as usize % actions.len()];
            cur = cur.apply_action(a).unwrap();
            out.push(cur.clone());
        }
        out
    }

    #[test]
    fn retarget_equals_fresh_elaboration_across_walks() {
        let mut seed = 0x9e3779b97f4a7c15u64;
        for kind in [PpgKind::And, PpgKind::Mbe, PpgKind::MacAnd] {
            let base = CompressorTree::wallace(8, kind).unwrap();
            let mut inc = IncrementalMultiplier::new(&base).unwrap();
            assert_eq!(*inc.netlist(), MultiplierNetlist::elaborate(&base).unwrap().into_netlist());
            for next in walk(&base, 6, &mut seed) {
                let delta = inc.retarget(&next).unwrap();
                assert!(delta.size() > 0, "a tree change must touch gates");
                let fresh = MultiplierNetlist::elaborate(&next).unwrap().into_netlist();
                assert_eq!(*inc.netlist(), fresh, "{kind}");
                assert!(inc.arena().matches_netlist(&fresh));
            }
        }
    }

    #[test]
    fn retarget_to_same_tree_is_empty_delta() {
        let tree = CompressorTree::dadda(8, PpgKind::And).unwrap();
        let mut inc = IncrementalMultiplier::new(&tree).unwrap();
        let d = inc.retarget(&tree.clone()).unwrap();
        assert_eq!(d.size(), 0);
    }

    #[test]
    fn retarget_rejects_profile_mismatch() {
        let t8 = CompressorTree::wallace(8, PpgKind::And).unwrap();
        let t16 = CompressorTree::wallace(16, PpgKind::And).unwrap();
        let mut inc = IncrementalMultiplier::new(&t8).unwrap();
        assert!(inc.retarget(&t16).is_err());
    }

    #[test]
    fn deltas_are_local_for_msb_actions() {
        // An action near the MSB should leave most of the netlist
        // untouched: the whole point of the splice.
        let tree = CompressorTree::wallace(16, PpgKind::And).unwrap();
        let mut inc = IncrementalMultiplier::new(&tree).unwrap();
        let total = inc.netlist().gates().len();
        let cutoff = tree.matrix().num_columns() - 6;
        let a = tree
            .valid_actions()
            .into_iter()
            .rfind(|a| a.column() >= cutoff)
            .expect("a high-column action exists on a 16-bit Wallace tree");
        let next = tree.apply_action(a).unwrap();
        let d = inc.retarget(&next).unwrap();
        assert!(
            d.removed.len() < total / 4,
            "MSB edit should be local: {} of {total}",
            d.removed.len()
        );
    }
}
