//! Pipelined multiplier/MAC generation.
//!
//! Inserts register boundaries at the two natural cut points of the
//! paper's architecture — after partial-product generation and
//! between the compressor tree and the final adder — turning the
//! combinational datapath into a 1–3-cycle pipeline. This covers the
//! pipelined merged-MAC design space the paper cites ([Zhang et al.,
//! ASP-DAC 2021]) with the same compressor-tree optimization machinery.

use crate::adder::{add, AdderKind};
use crate::ct_elab::elaborate_ct;
use crate::netlist::{Netlist, NetlistBuilder};
use crate::ppg::{and_ppg, mbe_ppg, merge_mac_addend};
use crate::RtlError;
use rlmul_ct::{CompressorTree, PpgKind};

/// Which pipeline boundaries to register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PipelineCuts {
    /// Register every partial product before the compressor tree.
    pub after_ppg: bool,
    /// Register the two compressor-tree output rows before the CPA.
    pub before_cpa: bool,
}

impl PipelineCuts {
    /// Pipeline latency in cycles added by the enabled cuts.
    pub fn latency(self) -> usize {
        usize::from(self.after_ppg) + usize::from(self.before_cpa)
    }
}

/// Elaborates `tree` with pipeline registers at the selected cuts.
/// With no cuts enabled this is identical to
/// [`crate::MultiplierNetlist::elaborate_with_adder`].
///
/// # Errors
///
/// Propagates elaboration errors.
pub fn elaborate_pipelined(
    tree: &CompressorTree,
    cpa: AdderKind,
    cuts: PipelineCuts,
) -> Result<Netlist, RtlError> {
    let bits = tree.bits();
    let kind = tree.profile().kind();
    let name = format!(
        "{}{}x{}_p{}",
        if kind.is_mac() { "mac" } else { "mul" },
        bits,
        bits,
        cuts.latency()
    );
    let mut b = NetlistBuilder::new(name);
    let a = b.input("a", bits);
    let m = b.input("b", bits);
    let mut cols = match kind.base() {
        PpgKind::Mbe => mbe_ppg(&mut b, &a, &m),
        _ => and_ppg(&mut b, &a, &m),
    };
    if kind.is_mac() {
        let c = b.input("c", 2 * bits);
        merge_mac_addend(&mut cols, &c);
    }
    if cuts.after_ppg {
        for col in cols.iter_mut() {
            *col = b.dff_bus(col);
        }
    }
    let rows = elaborate_ct(&mut b, tree, cols)?;
    let (row0, row1) = if cuts.before_cpa {
        (b.dff_bus(&rows.row0), b.dff_bus(&rows.row1))
    } else {
        (rows.row0, rows.row1)
    };
    let p = add(&mut b, &row0, &row1, cpa);
    b.output("p", &p);
    Ok(b.finish().sweep())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_counts_enabled_cuts() {
        assert_eq!(PipelineCuts::default().latency(), 0);
        assert_eq!(PipelineCuts { after_ppg: true, before_cpa: true }.latency(), 2);
    }

    #[test]
    fn pipelined_netlists_validate_and_are_sequential() {
        let tree = CompressorTree::dadda(6, PpgKind::And).unwrap();
        for cuts in [
            PipelineCuts { after_ppg: true, before_cpa: false },
            PipelineCuts { after_ppg: false, before_cpa: true },
            PipelineCuts { after_ppg: true, before_cpa: true },
        ] {
            let n = elaborate_pipelined(&tree, AdderKind::default(), cuts).unwrap();
            n.validate().unwrap_or_else(|e| panic!("{cuts:?}: {e}"));
            assert!(n.is_sequential(), "{cuts:?}");
        }
    }

    #[test]
    fn zero_cuts_matches_combinational_elaboration() {
        let tree = CompressorTree::dadda(6, PpgKind::And).unwrap();
        let n = elaborate_pipelined(&tree, AdderKind::default(), PipelineCuts::default()).unwrap();
        assert!(!n.is_sequential());
        let comb = crate::MultiplierNetlist::elaborate(&tree).unwrap();
        assert_eq!(n.gates().len(), comb.netlist().gates().len());
    }
}
