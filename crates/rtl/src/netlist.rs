//! Gate-level netlist intermediate representation.
//!
//! Netlists are built through [`NetlistBuilder`], which performs
//! constant folding and trivial strength reduction on the fly (so
//! `x & 0` never materializes a gate). Gates are stored in
//! construction order, which is a valid topological order: every gate
//! input is a primary input, a constant, a flip-flop output, or the
//! output of an earlier gate.

use std::collections::BTreeMap;

/// Identifier of a single-bit net. Nets `0` and `1` are the constant
/// `0` and `1` nets of every netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NetId(pub u32);

/// The constant-zero net.
pub const CONST0: NetId = NetId(0);
/// The constant-one net.
pub const CONST1: NetId = NetId(1);

impl NetId {
    /// Whether this net is one of the two constants.
    pub fn is_const(self) -> bool {
        self == CONST0 || self == CONST1
    }
}

/// Primitive gate function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateKind {
    /// Inverter: `y = ¬a`.
    Inv,
    /// Buffer: `y = a`.
    Buf,
    /// 2-input AND.
    And2,
    /// 2-input OR.
    Or2,
    /// 2-input NAND.
    Nand2,
    /// 2-input NOR.
    Nor2,
    /// 2-input XOR.
    Xor2,
    /// 2-input XNOR.
    Xnor2,
    /// 2:1 multiplexer: `y = s ? b : a` with inputs `[a, b, s]`.
    Mux2,
    /// Half adder (2:2 compressor): `[a, b] → [sum, carry]`.
    HalfAdder,
    /// Full adder (3:2 compressor): `[a, b, cin] → [sum, carry]`.
    FullAdder,
    /// 4:2 compressor: `[x1, x2, x3, x4, cin] → [sum, carry, cout]`,
    /// logically two chained full adders; `cout = maj(x1, x2, x3)` is
    /// independent of `cin`, which is what makes same-stage carry
    /// chains ripple-free.
    Compressor42,
    /// D flip-flop: `[d] → [q]`, rising-edge, implicit global clock.
    Dff,
}

impl GateKind {
    /// Number of input pins.
    pub fn num_inputs(self) -> usize {
        match self {
            GateKind::Inv | GateKind::Buf | GateKind::Dff => 1,
            GateKind::And2
            | GateKind::Or2
            | GateKind::Nand2
            | GateKind::Nor2
            | GateKind::Xor2
            | GateKind::Xnor2
            | GateKind::HalfAdder => 2,
            GateKind::Mux2 | GateKind::FullAdder => 3,
            GateKind::Compressor42 => 5,
        }
    }

    /// Number of output pins.
    pub fn num_outputs(self) -> usize {
        match self {
            GateKind::HalfAdder | GateKind::FullAdder => 2,
            GateKind::Compressor42 => 3,
            _ => 1,
        }
    }

    /// Whether this is a sequential element.
    pub fn is_sequential(self) -> bool {
        matches!(self, GateKind::Dff)
    }
}

/// A gate instance. Unused pin slots hold [`CONST0`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Gate {
    /// Gate function.
    pub kind: GateKind,
    /// Input nets; only the first `kind.num_inputs()` are meaningful.
    pub ins: [NetId; 5],
    /// Output nets; only the first `kind.num_outputs()` are meaningful.
    pub outs: [NetId; 3],
}

impl Gate {
    /// The meaningful input nets.
    pub fn inputs(&self) -> &[NetId] {
        &self.ins[..self.kind.num_inputs()]
    }

    /// The meaningful output nets.
    pub fn outputs(&self) -> &[NetId] {
        &self.outs[..self.kind.num_outputs()]
    }
}

/// A named multi-bit port (LSB first).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Port {
    /// Port name (a valid Verilog identifier).
    pub name: String,
    /// Net of each bit, least-significant first.
    pub bits: Vec<NetId>,
}

/// Aggregate gate-count statistics of a netlist.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GateStats {
    counts: BTreeMap<&'static str, usize>,
    total: usize,
}

impl GateStats {
    /// Total gate count.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Count of a specific gate kind by display name (e.g. `"FA"`).
    pub fn count(&self, name: &str) -> usize {
        self.counts.get(name).copied().unwrap_or(0)
    }

    /// All `(name, count)` pairs in alphabetical order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, usize)> + '_ {
        self.counts.iter().map(|(k, v)| (*k, *v))
    }
}

pub(crate) fn kind_name(kind: GateKind) -> &'static str {
    match kind {
        GateKind::Inv => "INV",
        GateKind::Buf => "BUF",
        GateKind::And2 => "AND2",
        GateKind::Or2 => "OR2",
        GateKind::Nand2 => "NAND2",
        GateKind::Nor2 => "NOR2",
        GateKind::Xor2 => "XOR2",
        GateKind::Xnor2 => "XNOR2",
        GateKind::Mux2 => "MUX2",
        GateKind::HalfAdder => "HA",
        GateKind::FullAdder => "FA",
        GateKind::Compressor42 => "COMP42",
        GateKind::Dff => "DFF",
    }
}

/// A flattened gate-level netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Netlist {
    name: String,
    num_nets: u32,
    inputs: Vec<Port>,
    outputs: Vec<Port>,
    gates: Vec<Gate>,
}

impl Netlist {
    /// Module name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total number of nets, including the two constants.
    pub fn num_nets(&self) -> u32 {
        self.num_nets
    }

    /// Primary input ports.
    pub fn inputs(&self) -> &[Port] {
        &self.inputs
    }

    /// Primary output ports.
    pub fn outputs(&self) -> &[Port] {
        &self.outputs
    }

    /// Gates in topological order.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Whether the netlist contains sequential elements.
    pub fn is_sequential(&self) -> bool {
        self.gates.iter().any(|g| g.kind.is_sequential())
    }

    /// Gate-count statistics.
    pub fn stats(&self) -> GateStats {
        let mut stats = GateStats::default();
        for g in &self.gates {
            *stats.counts.entry(kind_name(g.kind)).or_insert(0) += 1;
            stats.total += 1;
        }
        stats
    }

    /// Removes gates whose outputs reach no primary output and no
    /// flip-flop, returning the swept netlist. Net ids are preserved.
    ///
    /// Dead logic arises naturally from constant folding (e.g. the
    /// group-propagate chain of a prefix adder whose top carry is
    /// discarded) and would otherwise inflate area reports.
    pub fn sweep(mut self) -> Netlist {
        let n = self.num_nets as usize;
        let mut live = vec![false; n];
        for p in &self.outputs {
            for &b in &p.bits {
                live[b.0 as usize] = true;
            }
        }
        // Sequential elements are always kept; their D cones are live.
        for g in &self.gates {
            if g.kind.is_sequential() {
                for &i in g.inputs() {
                    live[i.0 as usize] = true;
                }
            }
        }
        // One reverse sweep suffices: gates are topologically ordered,
        // so a gate's outputs are only read by later gates.
        for idx in (0..self.gates.len()).rev() {
            let g = self.gates[idx];
            if g.kind.is_sequential() || g.outputs().iter().any(|o| live[o.0 as usize]) {
                for &i in g.inputs() {
                    live[i.0 as usize] = true;
                }
            }
        }
        self.gates
            .retain(|g| g.kind.is_sequential() || g.outputs().iter().any(|o| live[o.0 as usize]));
        self
    }

    /// Mutable gate access for the defect constructors in
    /// [`crate::mutate`]; intentionally crate-private so the public IR
    /// stays append-only through [`NetlistBuilder`].
    pub(crate) fn gates_mut(&mut self) -> &mut Vec<Gate> {
        &mut self.gates
    }

    pub(crate) fn outputs_mut(&mut self) -> &mut Vec<Port> {
        &mut self.outputs
    }

    pub(crate) fn bump_num_nets(&mut self) {
        self.num_nets += 1;
    }

    /// Assembles a netlist from raw parts without validation — used
    /// by the arena compactor, whose inputs may deliberately hold
    /// lint defects that `validate` would reject.
    pub(crate) fn from_parts(
        name: String,
        num_nets: u32,
        inputs: Vec<Port>,
        outputs: Vec<Port>,
        gates: Vec<Gate>,
    ) -> Netlist {
        Netlist { name, num_nets, inputs, outputs, gates }
    }

    /// Checks structural sanity: single driver per net, inputs defined
    /// before use, ports reference existing nets. Returns the first
    /// problem found as a human-readable message.
    ///
    /// # Errors
    ///
    /// Returns a description of the violation.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.num_nets as usize;
        // 0 = undefined, 1 = defined (combinationally available).
        let mut defined = vec![false; n];
        defined[0] = true;
        defined[1] = true;
        for p in &self.inputs {
            for &b in &p.bits {
                if b.0 as usize >= n {
                    return Err(format!("input {} references net {} ≥ {}", p.name, b.0, n));
                }
                if defined[b.0 as usize] {
                    return Err(format!("net {} multiply driven (input {})", b.0, p.name));
                }
                defined[b.0 as usize] = true;
            }
        }
        // Flip-flop outputs are timing startpoints: pre-define them.
        for g in &self.gates {
            if g.kind.is_sequential() {
                for &o in g.outputs() {
                    if defined[o.0 as usize] {
                        return Err(format!("net {} multiply driven (dff q)", o.0));
                    }
                    defined[o.0 as usize] = true;
                }
            }
        }
        for (i, g) in self.gates.iter().enumerate() {
            if !g.kind.is_sequential() {
                for &inp in g.inputs() {
                    if !defined[inp.0 as usize] {
                        return Err(format!(
                            "gate {i} ({:?}) reads undefined net {}",
                            g.kind, inp.0
                        ));
                    }
                }
                for &o in g.outputs() {
                    if defined[o.0 as usize] {
                        return Err(format!("net {} multiply driven (gate {i})", o.0));
                    }
                    defined[o.0 as usize] = true;
                }
            }
        }
        // Sequential D pins may read anything defined by the end.
        for (i, g) in self.gates.iter().enumerate() {
            if g.kind.is_sequential() {
                for &inp in g.inputs() {
                    if !defined[inp.0 as usize] {
                        return Err(format!("dff {i} reads undefined net {}", inp.0));
                    }
                }
            }
        }
        for p in &self.outputs {
            for &b in &p.bits {
                if !defined[b.0 as usize] {
                    return Err(format!("output {} reads undefined net {}", p.name, b.0));
                }
            }
        }
        Ok(())
    }
}

/// Opaque reference to a placeholder flip-flop created by
/// [`NetlistBuilder::dff_uninit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DffHandle(usize);

/// Incremental netlist constructor with on-the-fly constant folding.
///
/// ```
/// use rlmul_rtl::{NetlistBuilder, CONST0};
///
/// let mut b = NetlistBuilder::new("toy");
/// let a = b.input("a", 1)[0];
/// let zero_and = b.and2(a, CONST0); // folded, no gate emitted
/// assert_eq!(zero_and, CONST0);
/// let y = b.xor2(a, a); // x ^ x = 0
/// b.output("y", &[y]);
/// let n = b.finish();
/// assert_eq!(n.gates().len(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct NetlistBuilder {
    name: String,
    num_nets: u32,
    inputs: Vec<Port>,
    outputs: Vec<Port>,
    gates: Vec<Gate>,
}

impl NetlistBuilder {
    /// Starts a new module called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        NetlistBuilder {
            name: name.into(),
            num_nets: 2, // constants
            inputs: Vec::new(),
            outputs: Vec::new(),
            gates: Vec::new(),
        }
    }

    fn fresh(&mut self) -> NetId {
        let id = NetId(self.num_nets);
        self.num_nets += 1;
        id
    }

    /// Declares a `width`-bit primary input, returning its nets
    /// (LSB first).
    pub fn input(&mut self, name: impl Into<String>, width: usize) -> Vec<NetId> {
        let bits: Vec<NetId> = (0..width).map(|_| self.fresh()).collect();
        self.inputs.push(Port { name: name.into(), bits: bits.clone() });
        bits
    }

    /// Declares a primary output driven by `bits` (LSB first).
    pub fn output(&mut self, name: impl Into<String>, bits: &[NetId]) {
        self.outputs.push(Port { name: name.into(), bits: bits.to_vec() });
    }

    fn emit1(&mut self, kind: GateKind, ins: [NetId; 3]) -> NetId {
        let y = self.fresh();
        self.gates.push(Gate {
            kind,
            ins: [ins[0], ins[1], ins[2], CONST0, CONST0],
            outs: [y, CONST0, CONST0],
        });
        y
    }

    fn emit2(&mut self, kind: GateKind, ins: [NetId; 3]) -> (NetId, NetId) {
        let s = self.fresh();
        let c = self.fresh();
        self.gates.push(Gate {
            kind,
            ins: [ins[0], ins[1], ins[2], CONST0, CONST0],
            outs: [s, c, CONST0],
        });
        (s, c)
    }

    /// `y = ¬a`, folding constants.
    pub fn inv(&mut self, a: NetId) -> NetId {
        match a {
            CONST0 => CONST1,
            CONST1 => CONST0,
            _ => self.emit1(GateKind::Inv, [a, CONST0, CONST0]),
        }
    }

    /// `y = a` through an explicit buffer (no folding: buffers are
    /// sometimes wanted for fanout isolation).
    pub fn buf(&mut self, a: NetId) -> NetId {
        self.emit1(GateKind::Buf, [a, CONST0, CONST0])
    }

    /// `y = a & b`, folding constants and `a & a`.
    pub fn and2(&mut self, a: NetId, b: NetId) -> NetId {
        match (a, b) {
            (CONST0, _) | (_, CONST0) => CONST0,
            (CONST1, x) | (x, CONST1) => x,
            (x, y) if x == y => x,
            _ => self.emit1(GateKind::And2, [a, b, CONST0]),
        }
    }

    /// `y = a | b`, folding constants and `a | a`.
    pub fn or2(&mut self, a: NetId, b: NetId) -> NetId {
        match (a, b) {
            (CONST1, _) | (_, CONST1) => CONST1,
            (CONST0, x) | (x, CONST0) => x,
            (x, y) if x == y => x,
            _ => self.emit1(GateKind::Or2, [a, b, CONST0]),
        }
    }

    /// `y = ¬(a & b)`, folding constants.
    pub fn nand2(&mut self, a: NetId, b: NetId) -> NetId {
        match (a, b) {
            (CONST0, _) | (_, CONST0) => CONST1,
            (CONST1, x) | (x, CONST1) => self.inv(x),
            (x, y) if x == y => self.inv(x),
            _ => self.emit1(GateKind::Nand2, [a, b, CONST0]),
        }
    }

    /// `y = ¬(a | b)`, folding constants.
    pub fn nor2(&mut self, a: NetId, b: NetId) -> NetId {
        match (a, b) {
            (CONST1, _) | (_, CONST1) => CONST0,
            (CONST0, x) | (x, CONST0) => self.inv(x),
            (x, y) if x == y => self.inv(x),
            _ => self.emit1(GateKind::Nor2, [a, b, CONST0]),
        }
    }

    /// `y = a ⊕ b`, folding constants, `a ⊕ a` and `a ⊕ ¬a` patterns
    /// involving constants.
    pub fn xor2(&mut self, a: NetId, b: NetId) -> NetId {
        match (a, b) {
            (CONST0, x) | (x, CONST0) => x,
            (CONST1, x) | (x, CONST1) => self.inv(x),
            (x, y) if x == y => CONST0,
            _ => self.emit1(GateKind::Xor2, [a, b, CONST0]),
        }
    }

    /// `y = ¬(a ⊕ b)`, folding constants.
    pub fn xnor2(&mut self, a: NetId, b: NetId) -> NetId {
        match (a, b) {
            (CONST0, x) | (x, CONST0) => self.inv(x),
            (CONST1, x) | (x, CONST1) => x,
            (x, y) if x == y => CONST1,
            _ => self.emit1(GateKind::Xnor2, [a, b, CONST0]),
        }
    }

    /// `y = s ? b : a`, folding constant selects and equal branches.
    pub fn mux2(&mut self, a: NetId, b: NetId, s: NetId) -> NetId {
        match (a, b, s) {
            (x, _, CONST0) => x,
            (_, x, CONST1) => x,
            (x, y, _) if x == y => x,
            (CONST0, CONST1, s) => s,
            (CONST1, CONST0, s) => self.inv(s),
            _ => self.emit1(GateKind::Mux2, [a, b, s]),
        }
    }

    /// Half adder `(sum, carry) = (a ⊕ b, a & b)`, folding constants.
    pub fn half_adder(&mut self, a: NetId, b: NetId) -> (NetId, NetId) {
        match (a, b) {
            (CONST0, x) | (x, CONST0) => (x, CONST0),
            (CONST1, x) | (x, CONST1) => (self.inv(x), x),
            (x, y) if x == y => (CONST0, x),
            _ => self.emit2(GateKind::HalfAdder, [a, b, CONST0]),
        }
    }

    /// Full adder `(sum, carry)`, folding any constant or duplicate
    /// input down to a half adder or simpler logic.
    pub fn full_adder(&mut self, a: NetId, b: NetId, cin: NetId) -> (NetId, NetId) {
        // Normalize constants to the cin slot where possible.
        let (a, b, cin) = if a.is_const() {
            (cin, b, a)
        } else if b.is_const() {
            (a, cin, b)
        } else {
            (a, b, cin)
        };
        match cin {
            CONST0 => self.half_adder(a, b),
            CONST1 => {
                // sum = ¬(a ⊕ b), carry = a | b
                let s = self.xnor2(a, b);
                let c = self.or2(a, b);
                (s, c)
            }
            _ => {
                if a == b {
                    // a + a + cin = 2a + cin → sum = cin, carry = a.
                    return (cin, a);
                }
                if a == cin || b == cin {
                    let other = if a == cin { b } else { a };
                    return (other, cin);
                }
                self.emit2(GateKind::FullAdder, [a, b, cin])
            }
        }
    }

    /// 4:2 compressor `(sum, carry, cout)` over `[x1, x2, x3, x4]`
    /// plus a same-stage `cin`. Logically equivalent to two chained
    /// full adders; when any `x` input is constant the gate folds
    /// into that decomposition (which folds further).
    pub fn compressor42(&mut self, x: [NetId; 4], cin: NetId) -> (NetId, NetId, NetId) {
        if x.iter().any(|n| n.is_const()) {
            let (s1, cout) = self.full_adder(x[0], x[1], x[2]);
            let (sum, carry) = self.full_adder(s1, x[3], cin);
            return (sum, carry, cout);
        }
        let sum = self.fresh();
        let carry = self.fresh();
        let cout = self.fresh();
        self.gates.push(Gate {
            kind: GateKind::Compressor42,
            ins: [x[0], x[1], x[2], x[3], cin],
            outs: [sum, carry, cout],
        });
        (sum, carry, cout)
    }

    /// D flip-flop returning the registered value `q`.
    pub fn dff(&mut self, d: NetId) -> NetId {
        self.emit1(GateKind::Dff, [d, CONST0, CONST0])
    }

    /// Creates a flip-flop whose D pin is connected later with
    /// [`NetlistBuilder::drive_dff`] — needed when importing netlists
    /// whose register fan-in is defined after its consumers (e.g.
    /// Verilog `always` blocks at the end of a module). Until driven,
    /// D reads constant 0.
    pub fn dff_uninit(&mut self) -> (NetId, DffHandle) {
        let q = self.dff(CONST0);
        (q, DffHandle(self.gates.len() - 1))
    }

    /// Connects the D pin of a placeholder flip-flop.
    ///
    /// # Panics
    ///
    /// Panics if the handle does not refer to a flip-flop (handles
    /// only come from [`NetlistBuilder::dff_uninit`]).
    pub fn drive_dff(&mut self, handle: DffHandle, d: NetId) {
        let gate = &mut self.gates[handle.0];
        assert_eq!(gate.kind, GateKind::Dff, "handle must point at a flip-flop");
        gate.ins[0] = d;
    }

    /// Registers each bit of a bus.
    pub fn dff_bus(&mut self, d: &[NetId]) -> Vec<NetId> {
        d.iter().map(|&b| self.dff(b)).collect()
    }

    /// Finalizes the netlist.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the constructed netlist fails
    /// [`Netlist::validate`] (a builder bug, not a user error).
    pub fn finish(self) -> Netlist {
        let n = Netlist {
            name: self.name,
            num_nets: self.num_nets,
            inputs: self.inputs,
            outputs: self.outputs,
            gates: self.gates,
        };
        debug_assert_eq!(n.validate(), Ok(()));
        n
    }

    /// Captures the builder's position so a later
    /// [`NetlistBuilder::rewind`] can discard everything emitted after
    /// this point. Net-id allocation replays identically from a
    /// rewound checkpoint, which is what lets incremental
    /// re-elaboration produce netlists *equal* (not merely
    /// isomorphic) to a from-scratch build.
    pub fn checkpoint(&self) -> BuilderCheckpoint {
        BuilderCheckpoint {
            num_nets: self.num_nets,
            num_gates: self.gates.len(),
            num_outputs: self.outputs.len(),
        }
    }

    /// Rewinds the builder to `ck`: gates and output ports emitted
    /// after the checkpoint are discarded and the net-id allocator is
    /// reset, so re-emitting the same construction sequence yields
    /// the same net ids. Input ports are never rewound (checkpoints
    /// are taken after input declaration).
    ///
    /// # Panics
    ///
    /// Panics if `ck` was taken from a builder state this builder has
    /// not reached (a stale or foreign checkpoint).
    pub fn rewind(&mut self, ck: &BuilderCheckpoint) {
        assert!(
            ck.num_gates <= self.gates.len()
                && ck.num_nets <= self.num_nets
                && ck.num_outputs <= self.outputs.len(),
            "rewind target is ahead of the builder"
        );
        self.gates.truncate(ck.num_gates);
        self.outputs.truncate(ck.num_outputs);
        self.num_nets = ck.num_nets;
    }

    /// Clones the current builder state into a finished [`Netlist`]
    /// without consuming the builder — the incremental elaborator
    /// snapshots after every splice while keeping the builder alive
    /// for the next one.
    pub fn snapshot(&self) -> Netlist {
        let n = Netlist {
            name: self.name.clone(),
            num_nets: self.num_nets,
            inputs: self.inputs.clone(),
            outputs: self.outputs.clone(),
            gates: self.gates.clone(),
        };
        debug_assert_eq!(n.validate(), Ok(()));
        n
    }
}

/// Opaque resume point inside a [`NetlistBuilder`]; see
/// [`NetlistBuilder::checkpoint`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BuilderCheckpoint {
    num_nets: u32,
    num_gates: usize,
    num_outputs: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_folding_elides_gates() {
        let mut b = NetlistBuilder::new("fold");
        let x = b.input("x", 1)[0];
        assert_eq!(b.and2(x, CONST1), x);
        assert_eq!(b.or2(x, CONST1), CONST1);
        assert_eq!(b.xor2(x, x), CONST0);
        assert_eq!(b.mux2(x, x, CONST0), x);
        let (s, c) = b.half_adder(x, CONST0);
        assert_eq!((s, c), (x, CONST0));
        let n = b.finish();
        assert_eq!(n.gates().len(), 0);
    }

    #[test]
    fn full_adder_with_constant_carry_reduces() {
        let mut b = NetlistBuilder::new("fa");
        let x = b.input("x", 1)[0];
        let y = b.input("y", 1)[0];
        let (_, _) = b.full_adder(x, y, CONST0);
        let n = b.finish();
        assert_eq!(n.stats().count("HA"), 1);
        assert_eq!(n.stats().count("FA"), 0);
    }

    #[test]
    fn full_adder_constant_in_any_slot() {
        let mut b = NetlistBuilder::new("fa2");
        let x = b.input("x", 1)[0];
        let y = b.input("y", 1)[0];
        let (s, c) = b.full_adder(CONST1, x, y);
        // 1 + x + y: sum = ¬(x⊕y), carry = x|y
        let n_gates = b.gates.len();
        assert!(n_gates == 2);
        assert!(!s.is_const() && !c.is_const());
    }

    #[test]
    fn validate_catches_multiple_drivers() {
        let mut b = NetlistBuilder::new("bad");
        let x = b.input("x", 1)[0];
        let y = b.inv(x);
        b.output("y", &[y]);
        let mut n = b.finish();
        // Corrupt: second gate driving the same net.
        let g = n.gates[0];
        n.gates.push(g);
        assert!(n.validate().is_err());
    }

    #[test]
    fn dff_breaks_combinational_order() {
        let mut b = NetlistBuilder::new("seq");
        let x = b.input("x", 1)[0];
        let q = b.dff(x);
        let y = b.xor2(q, x);
        b.output("y", &[y]);
        let n = b.finish();
        assert!(n.is_sequential());
        n.validate().unwrap();
    }

    #[test]
    fn compressor42_folds_on_constant_inputs() {
        let mut b = NetlistBuilder::new("c42");
        let x = b.input("x", 4);
        // One constant x input downgrades to the two-FA decomposition.
        let (s, c, co) = b.compressor42([x[0], x[1], CONST0, x[2]], x[3]);
        assert!(!s.is_const() && !c.is_const());
        let n = b.finish();
        assert_eq!(n.stats().count("COMP42"), 0);
        assert!(n.stats().count("FA") + n.stats().count("HA") >= 1);
        let _ = co;
    }

    #[test]
    fn drive_dff_connects_late_fanin() {
        let mut b = NetlistBuilder::new("late");
        let x = b.input("x", 1);
        let (q, handle) = b.dff_uninit();
        let y = b.xor2(q, x[0]);
        b.drive_dff(handle, y);
        b.output("y", &[y]);
        let n = b.finish();
        n.validate().unwrap();
        // The DFF's D pin is the XOR output, creating the feedback loop
        // y = q ^ x, q' = y — legal sequentially.
        let dff = n.gates().iter().find(|g| g.kind == GateKind::Dff).unwrap();
        assert_eq!(dff.ins[0], y);
    }

    #[test]
    fn stats_count_by_kind() {
        let mut b = NetlistBuilder::new("stats");
        let x = b.input("x", 2);
        let a = b.and2(x[0], x[1]);
        let o = b.or2(x[0], x[1]);
        let (s, c) = b.full_adder(x[0], x[1], a);
        b.output("y", &[o, s, c]);
        let n = b.finish();
        assert_eq!(n.stats().count("AND2"), 1);
        assert_eq!(n.stats().count("OR2"), 1);
        assert_eq!(n.stats().count("FA"), 1);
        assert_eq!(n.stats().total(), 3);
    }
}
