//! Elaboration of a compressor tree into gates.
//!
//! The elaborator replays the deterministic stage assignment
//! (`rlmul_ct::StageTensor`, paper Algorithm 1) with actual nets:
//! each scheduled 3:2 / 2:2 compressor consumes rows from its
//! column's arrival queue in FIFO order, pushes its sum one stage
//! later in the same column and its carry one stage later in the next
//! column. What remains after all compressors fire are the one or two
//! residual rows per column that the final carry-propagate adder
//! resolves.

use crate::netlist::{NetId, NetlistBuilder, CONST0};
use crate::ppg::PpColumns;
use crate::RtlError;
use rlmul_ct::CompressorTree;
use std::collections::VecDeque;

/// The two rows a compressor tree hands to the final adder.
#[derive(Debug, Clone)]
pub struct CtRows {
    /// First addend row, one net per column.
    pub row0: Vec<NetId>,
    /// Second addend row; [`CONST0`] where a column compressed to a
    /// single row.
    pub row1: Vec<NetId>,
}

/// Elaborator state carried from column to column.
///
/// A snapshot of this struct (plus a [`crate::BuilderCheckpoint`])
/// taken at the top of column `j` is everything needed to re-run
/// elaboration from column `j` onward — the basis of the incremental
/// splice in [`crate::IncrementalMultiplier`].
#[derive(Debug, Clone, Default)]
pub(crate) struct CtState {
    /// Carries arriving at the next column, indexed by stage.
    pub carry_arrivals: Vec<Vec<NetId>>,
    /// Residual row 0, one entry per completed column.
    pub row0: Vec<NetId>,
    /// Residual row 1 ([`CONST0`] where a column left a single row).
    pub row1: Vec<NetId>,
}

/// Elaborates `tree` over the partial-product columns `cols`,
/// emitting full/half adders into `b`.
///
/// # Errors
///
/// Returns [`RtlError::ResidualMismatch`] if the nets left in a
/// column disagree with the matrix residual — an internal invariant
/// that holds for every legal tree.
pub fn elaborate_ct(
    b: &mut NetlistBuilder,
    tree: &CompressorTree,
    cols: PpColumns,
) -> Result<CtRows, RtlError> {
    let mut state = CtState::default();
    elaborate_ct_span(b, tree, &cols, &mut state, 0, |_, _, _| {})?;
    Ok(CtRows { row0: state.row0, row1: state.row1 })
}

/// Core column loop, resumable at `start`.
///
/// `state` must hold exactly the elaborator state that a from-scratch
/// run would have at the top of column `start` (empty/default for
/// `start == 0`). `checkpoint(j, builder, carry_arrivals)` fires at
/// the top of every column *before* any gate of that column is
/// emitted, letting the caller snapshot resume points (the residual
/// rows for columns `< j` never change afterwards, so a caller can
/// recover them by truncating the final rows). Gate and net-id
/// emission is identical to a monolithic run, so rewinding a builder
/// to a checkpoint and replaying a suffix reproduces a from-scratch
/// netlist exactly.
pub(crate) fn elaborate_ct_span(
    b: &mut NetlistBuilder,
    tree: &CompressorTree,
    cols: &[Vec<NetId>],
    state: &mut CtState,
    start: usize,
    mut checkpoint: impl FnMut(usize, &NetlistBuilder, &[Vec<NetId>]),
) -> Result<(), RtlError> {
    let tensor = tree.assign_stages()?;
    let ncols = tree.matrix().num_columns();
    debug_assert_eq!(cols.len(), ncols);
    let residuals = tree.matrix().residuals(tree.profile());

    let CtState { carry_arrivals, row0, row1 } = state;
    debug_assert_eq!(row0.len(), start);
    debug_assert_eq!(row1.len(), start);

    for (j, initial) in cols.iter().enumerate().skip(start) {
        checkpoint(j, b, carry_arrivals);
        let arrivals = std::mem::take(carry_arrivals);
        let depth = tensor.column_stages(j).len().max(arrivals.len());
        let mut avail: VecDeque<NetId> = initial.clone().into();
        let mut sums_next: Vec<NetId> = Vec::new();
        for stage in 0..depth {
            if stage > 0 {
                for s in std::mem::take(&mut sums_next) {
                    avail.push_back(s);
                }
            }
            if let Some(batch) = arrivals.get(stage) {
                avail.extend(batch.iter().copied());
            }
            let (n32, n22) = tensor.counts_at(j, stage);
            for _ in 0..n32 {
                let (x, y, z) = (
                    avail.pop_front().expect("assignment guarantees 3 rows"),
                    avail.pop_front().expect("assignment guarantees 3 rows"),
                    avail.pop_front().expect("assignment guarantees 3 rows"),
                );
                let (sum, carry) = b.full_adder(x, y, z);
                sums_next.push(sum);
                push_carry(carry_arrivals, stage + 1, carry, j + 1 < ncols);
            }
            for _ in 0..n22 {
                let (x, y) = (
                    avail.pop_front().expect("assignment guarantees 2 rows"),
                    avail.pop_front().expect("assignment guarantees 2 rows"),
                );
                let (sum, carry) = b.half_adder(x, y);
                sums_next.push(sum);
                push_carry(carry_arrivals, stage + 1, carry, j + 1 < ncols);
            }
        }
        // Residual rows: whatever is still queued plus the last sums.
        let mut residual: Vec<NetId> = avail.into();
        residual.extend(sums_next);
        let expected = residuals[j].max(0) as usize;
        if residual.len() != expected {
            return Err(RtlError::ResidualMismatch {
                column: j,
                expected: residuals[j],
                got: residual.len(),
            });
        }
        row0.push(residual.first().copied().unwrap_or(CONST0));
        row1.push(residual.get(1).copied().unwrap_or(CONST0));
    }
    Ok(())
}

fn push_carry(carry_arrivals: &mut Vec<Vec<NetId>>, stage: usize, carry: NetId, in_range: bool) {
    if !in_range {
        return; // carry past the MSB: discarded (mod 2^{2N})
    }
    if carry_arrivals.len() <= stage {
        carry_arrivals.resize(stage + 1, Vec::new());
    }
    carry_arrivals[stage].push(carry);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ppg::and_ppg;
    use rlmul_ct::PpgKind;

    #[test]
    fn elaboration_residuals_match_matrix() {
        for bits in [4, 8, 16] {
            let tree = CompressorTree::wallace(bits, PpgKind::And).unwrap();
            let mut b = NetlistBuilder::new("ct");
            let a = b.input("a", bits);
            let m = b.input("b", bits);
            let cols = and_ppg(&mut b, &a, &m);
            let rows = elaborate_ct(&mut b, &tree, cols).unwrap();
            assert_eq!(rows.row0.len(), 2 * bits);
            assert_eq!(rows.row1.len(), 2 * bits);
            for (j, &res) in tree.matrix().residuals(tree.profile()).iter().enumerate() {
                if res <= 1 {
                    assert_eq!(rows.row1[j], CONST0, "bits={bits} col={j}");
                }
            }
        }
    }

    #[test]
    fn dadda_elaborates_too() {
        let tree = CompressorTree::dadda(8, PpgKind::And).unwrap();
        let mut b = NetlistBuilder::new("ct");
        let a = b.input("a", 8);
        let m = b.input("b", 8);
        let cols = and_ppg(&mut b, &a, &m);
        elaborate_ct(&mut b, &tree, cols).unwrap();
        let n = b.finish();
        n.validate().unwrap();
        // A Dadda tree keeps compressor count near the theoretical
        // minimum: N² − ... just sanity-check something fired.
        assert!(n.stats().count("FA") > 10);
    }
}
