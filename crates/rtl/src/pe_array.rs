//! Systolic processing-element (PE) array composition.
//!
//! The paper validates its optimized multipliers and MACs by
//! instantiating them inside PE arrays following a systolic-array
//! architecture (Section V-A). This module builds a weight-stationary
//! systolic array: activations flow left→right through per-PE
//! registers, partial sums flow top→bottom, weights are held at the
//! PE's inputs. Each PE either
//!
//! * multiplies then adds (`PeStyle::MultiplierAdder`, Table II), or
//! * uses a single merged MAC (`PeStyle::MergedMac`, Table III).
//!
//! The registered boundaries make the array's critical path equal to
//! one PE's combinational datapath — exactly the quantity the paper's
//! Tables II/III report.

use crate::adder::{add, AdderKind};
use crate::ct_elab::elaborate_ct;
use crate::netlist::{Netlist, NetlistBuilder};
use crate::ppg::{and_ppg, mbe_ppg, merge_mac_addend};
use crate::RtlError;
use rlmul_ct::{CompressorTree, PpgKind};

/// How each processing element computes `psum + a·w`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeStyle {
    /// A standalone multiplier followed by a carry-propagate adder.
    MultiplierAdder,
    /// A merged MAC: the incoming partial sum is injected into the
    /// multiplier's compressor tree.
    MergedMac,
}

/// Shape of a systolic PE array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeArrayConfig {
    /// Number of PE rows.
    pub rows: usize,
    /// Number of PE columns.
    pub cols: usize,
    /// Datapath style of each PE.
    pub style: PeStyle,
}

impl Default for PeArrayConfig {
    /// An 8 × 8 array of multiplier+adder PEs (the paper does not
    /// state its array size; 8 × 8 keeps full-array synthesis within
    /// interactive budgets while preserving the per-PE critical path).
    fn default() -> Self {
        PeArrayConfig { rows: 8, cols: 8, style: PeStyle::MultiplierAdder }
    }
}

/// Builds a systolic PE array whose every PE embeds the datapath
/// described by `tree`.
///
/// For [`PeStyle::MergedMac`] the tree must be a MAC profile
/// ([`PpgKind::is_mac`]); for [`PeStyle::MultiplierAdder`] it must be
/// a plain multiplier profile.
///
/// # Errors
///
/// Returns [`RtlError::InvalidParameter`] on a zero-sized array or a
/// tree/style mismatch, and propagates elaboration errors.
pub fn pe_array(tree: &CompressorTree, config: PeArrayConfig) -> Result<Netlist, RtlError> {
    if config.rows == 0 || config.cols == 0 {
        return Err(RtlError::InvalidParameter { what: "PE array must be at least 1×1" });
    }
    let is_mac = tree.profile().kind().is_mac();
    match (config.style, is_mac) {
        (PeStyle::MergedMac, false) => {
            return Err(RtlError::InvalidParameter { what: "MergedMac style needs a MAC tree" })
        }
        (PeStyle::MultiplierAdder, true) => {
            return Err(RtlError::InvalidParameter {
                what: "MultiplierAdder style needs a multiplier tree",
            })
        }
        _ => {}
    }
    let n = tree.bits();
    let mut b = NetlistBuilder::new(format!("pe_array_{}x{}_{}b", config.rows, config.cols, n));

    // Activations enter on the left edge, one bus per PE row.
    let acts: Vec<Vec<_>> = (0..config.rows).map(|r| b.input(format!("act{r}"), n)).collect();
    // Stationary weights, one bus per PE.
    let weights: Vec<Vec<Vec<_>>> = (0..config.rows)
        .map(|r| (0..config.cols).map(|c| b.input(format!("w{r}_{c}"), n)).collect())
        .collect();

    // psum[c] is the partial-sum bus flowing down PE column c.
    let mut psums: Vec<Vec<_>> = vec![vec![crate::netlist::CONST0; 2 * n]; config.cols];
    for r in 0..config.rows {
        let mut act = acts[r].clone();
        for c in 0..config.cols {
            // Register the activation as it enters the PE.
            let a_reg = b.dff_bus(&act);
            let w = &weights[r][c];
            let result = match config.style {
                PeStyle::MultiplierAdder => {
                    let product = elaborate_datapath(&mut b, tree, &a_reg, w, None)?;
                    add(&mut b, &product, &psums[c], AdderKind::KoggeStone)
                }
                PeStyle::MergedMac => elaborate_datapath(&mut b, tree, &a_reg, w, Some(&psums[c]))?,
            };
            psums[c] = b.dff_bus(&result);
            act = a_reg;
        }
    }
    for (c, psum) in psums.iter().enumerate() {
        b.output(format!("psum{c}"), psum);
    }
    Ok(b.finish().sweep())
}

/// Emits one PE datapath: partial products (optionally merged with a
/// `2N`-bit addend), compressor tree, final adder.
fn elaborate_datapath(
    b: &mut NetlistBuilder,
    tree: &CompressorTree,
    a: &[crate::netlist::NetId],
    w: &[crate::netlist::NetId],
    addend: Option<&[crate::netlist::NetId]>,
) -> Result<Vec<crate::netlist::NetId>, RtlError> {
    let mut cols = match tree.profile().kind().base() {
        PpgKind::Mbe => mbe_ppg(b, a, w),
        _ => and_ppg(b, a, w),
    };
    if let Some(add_bits) = addend {
        debug_assert!(tree.profile().kind().is_mac());
        merge_mac_addend(&mut cols, add_bits);
    }
    let rows = elaborate_ct(b, tree, cols)?;
    Ok(add(b, &rows.row0, &rows.row1, AdderKind::KoggeStone))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiplier_pe_array_builds_and_validates() {
        let tree = CompressorTree::dadda(8, PpgKind::And).unwrap();
        let cfg = PeArrayConfig { rows: 2, cols: 3, style: PeStyle::MultiplierAdder };
        let n = pe_array(&tree, cfg).unwrap();
        n.validate().unwrap();
        assert!(n.is_sequential());
        assert_eq!(n.outputs().len(), 3);
        assert_eq!(n.outputs()[0].bits.len(), 16);
    }

    #[test]
    fn mac_pe_array_builds_and_validates() {
        let tree = CompressorTree::dadda(8, PpgKind::MacAnd).unwrap();
        let cfg = PeArrayConfig { rows: 2, cols: 2, style: PeStyle::MergedMac };
        let n = pe_array(&tree, cfg).unwrap();
        n.validate().unwrap();
    }

    #[test]
    fn style_and_tree_must_agree() {
        let mul = CompressorTree::dadda(8, PpgKind::And).unwrap();
        let mac = CompressorTree::dadda(8, PpgKind::MacAnd).unwrap();
        assert!(
            pe_array(&mul, PeArrayConfig { rows: 1, cols: 1, style: PeStyle::MergedMac }).is_err()
        );
        assert!(pe_array(
            &mac,
            PeArrayConfig { rows: 1, cols: 1, style: PeStyle::MultiplierAdder }
        )
        .is_err());
    }

    #[test]
    fn zero_size_is_rejected() {
        let tree = CompressorTree::dadda(8, PpgKind::And).unwrap();
        assert!(pe_array(&tree, PeArrayConfig { rows: 0, cols: 1, ..Default::default() }).is_err());
    }

    #[test]
    fn area_scales_with_pe_count() {
        let tree = CompressorTree::dadda(8, PpgKind::And).unwrap();
        let small =
            pe_array(&tree, PeArrayConfig { rows: 1, cols: 1, style: PeStyle::MultiplierAdder })
                .unwrap();
        let big =
            pe_array(&tree, PeArrayConfig { rows: 2, cols: 2, style: PeStyle::MultiplierAdder })
                .unwrap();
        assert!(big.gates().len() > 3 * small.gates().len());
    }
}
