//! Partial-product generation: AND arrays and radix-4 Modified Booth
//! Encoding with sign-extension prevention, plus merged-MAC addend
//! injection.
//!
//! The bit placement here mirrors `rlmul_ct::PpProfile` exactly; a
//! test in this crate asserts the per-column counts agree, and the LEC
//! crate proves functional correctness against golden models.

use crate::netlist::{NetId, NetlistBuilder, CONST0, CONST1};
use rlmul_ct::{mbe_constant, mbe_digit_count};

/// Partial-product bits grouped by column (LSB column first).
pub type PpColumns = Vec<Vec<NetId>>;

/// Builds the `N²` AND-array partial products of `a × b` into
/// `2N` columns.
pub fn and_ppg(b: &mut NetlistBuilder, a: &[NetId], bb: &[NetId]) -> PpColumns {
    let n = a.len();
    debug_assert_eq!(bb.len(), n);
    let mut cols: PpColumns = vec![Vec::new(); 2 * n];
    for (i, &ai) in a.iter().enumerate() {
        for (j, &bj) in bb.iter().enumerate() {
            let p = b.and2(ai, bj);
            cols[i + j].push(p);
        }
    }
    cols
}

/// Booth digit selector signals for digit `i` of multiplier `m`
/// (`neg`, `one`, `two`), where the digit value is
/// `m_{2i−1} + m_{2i} − 2·m_{2i+1}` with out-of-range bits zero.
fn booth_digit(b: &mut NetlistBuilder, m: &[NetId], i: usize) -> (NetId, NetId, NetId) {
    let bit = |k: isize| -> NetId {
        if k < 0 || k as usize >= m.len() {
            CONST0
        } else {
            m[k as usize]
        }
    };
    let hi = bit(2 * i as isize + 1);
    let mid = bit(2 * i as isize);
    let lo = bit(2 * i as isize - 1);
    let neg = hi;
    let one = b.xor2(mid, lo);
    // two ⟺ digit is ±2 ⟺ (hi, mid, lo) ∈ {100, 011}.
    let mid_eq_lo = b.xnor2(mid, lo);
    let hi_ne_mid = b.xor2(hi, mid);
    let two = b.and2(mid_eq_lo, hi_ne_mid);
    (neg, one, two)
}

/// Builds the radix-4 MBE partial products of unsigned `a × m`
/// (`N` even) into `2N` columns, using the sign-extension-prevention
/// constant from [`rlmul_ct::mbe_constant`].
///
/// Row `i` places:
/// * encoded magnitude bits `e_k = ((a_k·one) | (a_{k−1}·two)) ⊕ neg`
///   at columns `2i + k`, `k = 0..=N`;
/// * the two's-complement correction bit `neg_i` at column `2i`
///   (rows `i < N/2` only — the top digit is never negative);
/// * `¬neg_i` at column `2i + N + 1` (same rows, when in range);
/// * plus constant-one bits of the folded constant.
pub fn mbe_ppg(b: &mut NetlistBuilder, a: &[NetId], m: &[NetId]) -> PpColumns {
    let n = a.len();
    debug_assert_eq!(m.len(), n);
    debug_assert_eq!(n % 2, 0, "MBE requires an even operand width");
    let ncols = 2 * n;
    let mut cols: PpColumns = vec![Vec::new(); ncols];
    let digits = mbe_digit_count(n);
    for i in 0..digits {
        let (neg, one, two) = booth_digit(b, m, i);
        for k in 0..=n {
            let col = 2 * i + k;
            if col >= ncols {
                continue;
            }
            let ak = if k < n { a[k] } else { CONST0 };
            let akm1 = if k >= 1 { a[k - 1] } else { CONST0 };
            let t1 = b.and2(ak, one);
            let t2 = b.and2(akm1, two);
            let mag = b.or2(t1, t2);
            let e = b.xor2(mag, neg);
            cols[col].push(e);
        }
        if i < n / 2 {
            cols[2 * i].push(neg);
            let p = 2 * i + n + 1;
            if p < ncols {
                let nneg = b.inv(neg);
                cols[p].push(nneg);
            }
        }
    }
    let k = mbe_constant(n);
    for (j, col) in cols.iter_mut().enumerate() {
        if (k >> j) & 1 == 1 {
            col.push(CONST1);
        }
    }
    cols
}

/// Injects a `2N`-bit MAC addend as one extra partial product per
/// column (merged-MAC construction, paper Section III-C).
pub fn merge_mac_addend(cols: &mut PpColumns, addend: &[NetId]) {
    debug_assert_eq!(cols.len(), addend.len());
    for (col, &bit) in cols.iter_mut().zip(addend) {
        col.push(bit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlmul_ct::{PpProfile, PpgKind};

    #[test]
    fn and_ppg_matches_profile_counts() {
        for n in [2, 4, 8, 16] {
            let mut b = NetlistBuilder::new("ppg");
            let a = b.input("a", n);
            let m = b.input("b", n);
            let cols = and_ppg(&mut b, &a, &m);
            let profile = PpProfile::new(n, PpgKind::And).unwrap();
            let counts: Vec<u32> = cols.iter().map(|c| c.len() as u32).collect();
            assert_eq!(counts.as_slice(), profile.columns(), "n = {n}");
        }
    }

    #[test]
    fn mbe_ppg_matches_profile_counts() {
        for n in [4, 8, 16] {
            let mut b = NetlistBuilder::new("ppg");
            let a = b.input("a", n);
            let m = b.input("b", n);
            let cols = mbe_ppg(&mut b, &a, &m);
            let profile = PpProfile::new(n, PpgKind::Mbe).unwrap();
            let counts: Vec<u32> = cols.iter().map(|c| c.len() as u32).collect();
            assert_eq!(counts.as_slice(), profile.columns(), "n = {n}");
        }
    }

    #[test]
    fn mac_merge_matches_profile_counts() {
        let n = 8;
        let mut b = NetlistBuilder::new("ppg");
        let a = b.input("a", n);
        let m = b.input("b", n);
        let c = b.input("c", 2 * n);
        let mut cols = and_ppg(&mut b, &a, &m);
        merge_mac_addend(&mut cols, &c);
        let profile = PpProfile::new(n, PpgKind::MacAnd).unwrap();
        let counts: Vec<u32> = cols.iter().map(|c| c.len() as u32).collect();
        assert_eq!(counts.as_slice(), profile.columns());
    }
}
