//! Structural Verilog-2001 emission.
//!
//! The emitter produces a single flattened module using continuous
//! assignments for combinational gates and one clocked `always` block
//! for the registers, the same style EasyMAC emits for its generated
//! multipliers. The output is meant for consumption by external
//! synthesis flows (Yosys/OpenROAD in the paper's setup).

use crate::netlist::{GateKind, NetId, Netlist, CONST0, CONST1};
use std::fmt::Write as _;

/// Renders `netlist` as a structural Verilog module.
///
/// Net `n` is named `n<id>`; ports keep their declared names and are
/// wired to their internal nets with assigns. Sequential designs gain
/// a `clk` input.
pub fn to_verilog(netlist: &Netlist) -> String {
    let mut s = String::new();
    let seq = netlist.is_sequential();
    let mut ports: Vec<String> = Vec::new();
    if seq {
        ports.push("clk".to_owned());
    }
    ports.extend(netlist.inputs().iter().map(|p| p.name.clone()));
    ports.extend(netlist.outputs().iter().map(|p| p.name.clone()));
    let _ = writeln!(s, "module {} ({});", netlist.name(), ports.join(", "));
    if seq {
        let _ = writeln!(s, "  input clk;");
    }
    for p in netlist.inputs() {
        let _ = writeln!(s, "  input [{}:0] {};", p.bits.len() - 1, p.name);
    }
    for p in netlist.outputs() {
        let _ = writeln!(s, "  output [{}:0] {};", p.bits.len() - 1, p.name);
    }
    // Wire declarations for every gate output.
    for g in netlist.gates() {
        for &o in g.outputs() {
            if g.kind == GateKind::Dff {
                let _ = writeln!(s, "  reg n{};", o.0);
            } else {
                let _ = writeln!(s, "  wire n{};", o.0);
            }
        }
    }
    // Input bits drive their nets.
    for p in netlist.inputs() {
        for (k, &bit) in p.bits.iter().enumerate() {
            let _ = writeln!(s, "  wire n{0}; assign n{0} = {1}[{2}];", bit.0, p.name, k);
        }
    }

    let name = |n: NetId| -> String {
        match n {
            CONST0 => "1'b0".to_owned(),
            CONST1 => "1'b1".to_owned(),
            other => format!("n{}", other.0),
        }
    };

    let mut dffs: Vec<(NetId, NetId)> = Vec::new();
    for g in netlist.gates() {
        let i: Vec<String> = g.inputs().iter().map(|&n| name(n)).collect();
        let o: Vec<String> = g.outputs().iter().map(|&n| name(n)).collect();
        match g.kind {
            GateKind::Inv => {
                let _ = writeln!(s, "  assign {} = ~{};", o[0], i[0]);
            }
            GateKind::Buf => {
                let _ = writeln!(s, "  assign {} = {};", o[0], i[0]);
            }
            GateKind::And2 => {
                let _ = writeln!(s, "  assign {} = {} & {};", o[0], i[0], i[1]);
            }
            GateKind::Or2 => {
                let _ = writeln!(s, "  assign {} = {} | {};", o[0], i[0], i[1]);
            }
            GateKind::Nand2 => {
                let _ = writeln!(s, "  assign {} = ~({} & {});", o[0], i[0], i[1]);
            }
            GateKind::Nor2 => {
                let _ = writeln!(s, "  assign {} = ~({} | {});", o[0], i[0], i[1]);
            }
            GateKind::Xor2 => {
                let _ = writeln!(s, "  assign {} = {} ^ {};", o[0], i[0], i[1]);
            }
            GateKind::Xnor2 => {
                let _ = writeln!(s, "  assign {} = ~({} ^ {});", o[0], i[0], i[1]);
            }
            GateKind::Mux2 => {
                let _ = writeln!(s, "  assign {} = {} ? {} : {};", o[0], i[2], i[1], i[0]);
            }
            GateKind::HalfAdder => {
                let _ = writeln!(s, "  assign {} = {} ^ {};", o[0], i[0], i[1]);
                let _ = writeln!(s, "  assign {} = {} & {};", o[1], i[0], i[1]);
            }
            GateKind::FullAdder => {
                let _ = writeln!(s, "  assign {} = {} ^ {} ^ {};", o[0], i[0], i[1], i[2]);
                let _ = writeln!(
                    s,
                    "  assign {} = ({} & {}) | ({} & ({} ^ {}));",
                    o[1], i[0], i[1], i[2], i[0], i[1]
                );
            }
            GateKind::Compressor42 => {
                // Two chained full adders: s1 is the inner node.
                let _ = writeln!(
                    s,
                    "  assign {} = {} ^ {} ^ {} ^ {} ^ {};",
                    o[0], i[0], i[1], i[2], i[3], i[4]
                );
                let s1 = format!("({} ^ {} ^ {})", i[0], i[1], i[2]);
                let _ = writeln!(
                    s,
                    "  assign {} = ({s1} & {}) | ({} & ({s1} ^ {}));",
                    o[1], i[3], i[4], i[3]
                );
                let _ = writeln!(
                    s,
                    "  assign {} = ({} & {}) | ({} & ({} ^ {}));",
                    o[2], i[0], i[1], i[2], i[0], i[1]
                );
            }
            GateKind::Dff => dffs.push((g.ins[0], g.outs[0])),
        }
    }
    if !dffs.is_empty() {
        let _ = writeln!(s, "  always @(posedge clk) begin");
        for (d, q) in dffs {
            let _ = writeln!(s, "    n{} <= {};", q.0, name(d));
        }
        let _ = writeln!(s, "  end");
    }
    for p in netlist.outputs() {
        for (k, &bit) in p.bits.iter().enumerate() {
            let _ = writeln!(s, "  assign {}[{}] = {};", p.name, k, name(bit));
        }
    }
    let _ = writeln!(s, "endmodule");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::NetlistBuilder;

    #[test]
    fn emits_a_well_formed_module() {
        let mut b = NetlistBuilder::new("toy");
        let x = b.input("x", 2);
        let y = b.and2(x[0], x[1]);
        let q = b.dff(y);
        b.output("y", &[y, q]);
        let v = to_verilog(&b.finish());
        assert!(v.starts_with("module toy (clk, x, y);"));
        assert!(v.contains("input [1:0] x;"));
        assert!(v.contains("always @(posedge clk)"));
        assert!(v.trim_end().ends_with("endmodule"));
    }

    #[test]
    fn multiplier_verilog_mentions_all_ports() {
        use rlmul_ct::{CompressorTree, PpgKind};
        let tree = CompressorTree::dadda(4, PpgKind::MacAnd).unwrap();
        let m = crate::MultiplierNetlist::elaborate(&tree).unwrap();
        let v = to_verilog(m.netlist());
        for port in ["a", "b", "c", "p"] {
            assert!(v.contains(&format!(" {port}")), "missing port {port}");
        }
    }
}
