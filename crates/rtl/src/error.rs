use rlmul_ct::CtError;
use std::error::Error;
use std::fmt;

/// Errors produced during RTL elaboration.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RtlError {
    /// The compressor-tree state itself is invalid.
    Ct(CtError),
    /// Elaboration left a column with a residual row count that does
    /// not match the matrix arithmetic (an internal invariant
    /// violation).
    ResidualMismatch {
        /// Offending column.
        column: usize,
        /// Residual predicted by the matrix.
        expected: i64,
        /// Rows actually left after elaboration.
        got: usize,
    },
    /// A parameter is out of range (e.g. a zero-sized PE array).
    InvalidParameter {
        /// Human-readable description.
        what: &'static str,
    },
}

impl fmt::Display for RtlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtlError::Ct(e) => write!(f, "compressor tree error: {e}"),
            RtlError::ResidualMismatch { column, expected, got } => {
                write!(f, "column {column} elaborated to {got} rows, matrix predicts {expected}")
            }
            RtlError::InvalidParameter { what } => write!(f, "invalid parameter: {what}"),
        }
    }
}

impl Error for RtlError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RtlError::Ct(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CtError> for RtlError {
    fn from(e: CtError) -> Self {
        RtlError::Ct(e)
    }
}
