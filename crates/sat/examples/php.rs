use rlmul_sat::{Lit, SolveResult, Solver};
fn main() {
    for holes in [7usize, 8] {
        let pigeons = holes + 1;
        let mut s = Solver::new();
        let all: Vec<Lit> = (0..pigeons * holes).map(|_| Lit::pos(s.new_var())).collect();
        for p in 0..pigeons {
            let row: Vec<Lit> = (0..holes).map(|h| all[p * holes + h]).collect();
            s.add_clause(&row);
        }
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in (p1 + 1)..pigeons {
                    s.add_clause(&[!all[p1 * holes + h], !all[p2 * holes + h]]);
                }
            }
        }
        let t = std::time::Instant::now();
        let r = s.solve();
        println!(
            "PHP({pigeons},{holes}): {r:?} in {:?}, {} conflicts",
            t.elapsed(),
            s.stats().conflicts
        );
        assert_eq!(r, SolveResult::Unsat);
    }
}
