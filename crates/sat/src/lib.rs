//! A from-scratch CDCL SAT solver for RL-MUL's formal verification
//! layer — the reproduction's substitute for the SAT engine inside
//! ABC's `cec`/fraig machinery.
//!
//! The solver implements the standard modern kernel: two-watched-
//! literal unit propagation, first-UIP conflict analysis with clause
//! learning and local minimization, VSIDS-style variable activities
//! with phase saving, Luby-scheduled restarts and activity-based
//! learnt-clause deletion. The API is purely programmatic (no DIMACS
//! layer): callers create variables, add clauses and issue
//! (optionally budgeted, optionally assumption-scoped) solve calls.
//! Incrementality — learnt clauses surviving across calls — is what
//! the equivalence sweeper in `rlmul-lec` leans on: thousands of
//! small "are these two nets equal?" queries against one shared
//! netlist encoding.
//!
//! # Example
//!
//! ```
//! use rlmul_sat::{Lit, SolveResult, Solver};
//!
//! let mut s = Solver::new();
//! let (a, b, c) = (s.new_var(), s.new_var(), s.new_var());
//! // c ↔ a ∧ b
//! s.add_clause(&[Lit::neg(c), Lit::pos(a)]);
//! s.add_clause(&[Lit::neg(c), Lit::pos(b)]);
//! s.add_clause(&[Lit::pos(c), Lit::neg(a), Lit::neg(b)]);
//! assert_eq!(s.solve_with(&[Lit::pos(c)]), SolveResult::Sat);
//! assert!(s.model_value(a) && s.model_value(b));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod lit;
mod solver;

pub use lit::{Lbool, Lit, Var};
pub use solver::{SolveResult, Solver, SolverStats};
