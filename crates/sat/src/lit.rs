//! Variables, literals and the three-valued assignment domain.

use std::fmt;
use std::ops::Not;

/// A propositional variable. Variables are created by
/// [`Solver::new_var`](crate::Solver::new_var) and are densely
/// numbered from zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub(crate) u32);

impl Var {
    /// Dense index of this variable.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A literal: a variable or its negation, packed as `2·var + sign`.
///
/// ```
/// use rlmul_sat::{Lit, Solver};
/// let mut s = Solver::new();
/// let v = s.new_var();
/// let l = Lit::pos(v);
/// assert_eq!((!l).var(), v);
/// assert!((!l).is_negated());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(pub(crate) u32);

impl Lit {
    /// The positive literal of `v`.
    pub fn pos(v: Var) -> Lit {
        Lit(v.0 << 1)
    }

    /// The negative literal of `v`.
    pub fn neg(v: Var) -> Lit {
        Lit((v.0 << 1) | 1)
    }

    /// Builds a literal with an explicit sign.
    pub fn new(v: Var, negated: bool) -> Lit {
        Lit((v.0 << 1) | negated as u32)
    }

    /// The underlying variable.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Whether this is the negated polarity.
    pub fn is_negated(self) -> bool {
        self.0 & 1 == 1
    }

    /// Conditionally negates: `l.xor(false) == l`, `l.xor(true) == !l`.
    pub fn xor(self, flip: bool) -> Lit {
        Lit(self.0 ^ flip as u32)
    }

    /// Dense index (`2·var + sign`), used for watch lists.
    pub(crate) fn idx(self) -> usize {
        self.0 as usize
    }
}

impl Not for Lit {
    type Output = Lit;
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", if self.is_negated() { "¬" } else { "" }, self.0 >> 1)
    }
}

/// Three-valued assignment status of a variable or literal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lbool {
    /// Assigned true.
    True,
    /// Assigned false.
    False,
    /// Unassigned.
    Undef,
}

impl Lbool {
    /// Flips true/false, leaves `Undef` alone.
    pub fn negate(self) -> Lbool {
        match self {
            Lbool::True => Lbool::False,
            Lbool::False => Lbool::True,
            Lbool::Undef => Lbool::Undef,
        }
    }

    /// From a concrete boolean.
    pub fn from_bool(b: bool) -> Lbool {
        if b {
            Lbool::True
        } else {
            Lbool::False
        }
    }
}
