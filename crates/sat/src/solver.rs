//! The CDCL search engine.
//!
//! A compact MiniSat-style solver: two-watched-literal propagation,
//! first-UIP conflict analysis with clause learning, VSIDS-style
//! variable activities with phase saving, Luby-scheduled restarts and
//! activity-based learnt-clause deletion. The solver is incremental:
//! clauses may be added between `solve` calls and learnt clauses are
//! kept, which is what makes fraig-style equivalence sweeping (many
//! related queries over one shared netlist encoding) cheap.

use crate::lit::{Lbool, Lit, Var};

/// Result of a (possibly budgeted) solve call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveResult {
    /// A satisfying assignment was found; read it with
    /// [`Solver::model_value`].
    Sat,
    /// No satisfying assignment exists (under the given assumptions).
    Unsat,
    /// The conflict budget ran out before an answer was reached.
    Unknown,
}

/// Work counters, cumulative over the solver's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Conflicts analyzed.
    pub conflicts: u64,
    /// Decisions taken.
    pub decisions: u64,
    /// Literals propagated.
    pub propagations: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Learnt clauses currently in the database.
    pub learnt_clauses: usize,
    /// Learnt clauses deleted by database reduction.
    pub deleted_clauses: u64,
}

#[derive(Debug)]
struct Clause {
    lits: Vec<Lit>,
    learnt: bool,
    activity: f64,
}

#[derive(Debug, Clone, Copy)]
struct Watcher {
    cref: u32,
    blocker: Lit,
}

/// Binary max-heap over variables ordered by activity, with position
/// tracking so activity bumps can sift in place.
#[derive(Debug, Default)]
struct VarOrder {
    heap: Vec<Var>,
    pos: Vec<i32>,
}

impl VarOrder {
    fn grow(&mut self) {
        self.pos.push(-1);
    }

    fn contains(&self, v: Var) -> bool {
        self.pos[v.index()] >= 0
    }

    fn insert(&mut self, v: Var, act: &[f64]) {
        if self.contains(v) {
            return;
        }
        self.pos[v.index()] = self.heap.len() as i32;
        self.heap.push(v);
        self.sift_up(self.heap.len() - 1, act);
    }

    fn bumped(&mut self, v: Var, act: &[f64]) {
        let p = self.pos[v.index()];
        if p >= 0 {
            self.sift_up(p as usize, act);
        }
    }

    fn pop_max(&mut self, act: &[f64]) -> Option<Var> {
        let top = *self.heap.first()?;
        let last = self.heap.pop().expect("non-empty");
        self.pos[top.index()] = -1;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last.index()] = 0;
            self.sift_down(0, act);
        }
        Some(top)
    }

    fn sift_up(&mut self, mut i: usize, act: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if act[self.heap[i].index()] <= act[self.heap[parent].index()] {
                break;
            }
            self.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize, act: &[f64]) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut best = i;
            if l < self.heap.len() && act[self.heap[l].index()] > act[self.heap[best].index()] {
                best = l;
            }
            if r < self.heap.len() && act[self.heap[r].index()] > act[self.heap[best].index()] {
                best = r;
            }
            if best == i {
                return;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.pos[self.heap[i].index()] = i as i32;
        self.pos[self.heap[j].index()] = j as i32;
    }
}

const VAR_DECAY: f64 = 0.95;
const CLAUSE_DECAY: f64 = 0.999;
const RESCALE_LIMIT: f64 = 1e100;
const LUBY_UNIT: u64 = 128;

/// An incremental CDCL SAT solver.
///
/// ```
/// use rlmul_sat::{Lit, SolveResult, Solver};
///
/// let mut s = Solver::new();
/// let a = s.new_var();
/// let b = s.new_var();
/// s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
/// s.add_clause(&[Lit::neg(a)]);
/// assert_eq!(s.solve(), SolveResult::Sat);
/// assert!(s.model_value(b));
/// assert_eq!(s.solve_with(&[Lit::neg(b)]), SolveResult::Unsat);
/// assert_eq!(s.solve(), SolveResult::Sat); // still satisfiable alone
/// ```
#[derive(Debug, Default)]
pub struct Solver {
    clauses: Vec<Clause>,
    watches: Vec<Vec<Watcher>>,
    assign: Vec<Lbool>,
    level: Vec<u32>,
    reason: Vec<Option<u32>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    clause_inc: f64,
    order: VarOrder,
    phase: Vec<bool>,
    seen: Vec<bool>,
    model: Vec<bool>,
    ok: bool,
    max_learnts: f64,
    stats: SolverStats,
    // Registered once here so the per-conflict attach path pays one
    // branch, not a registry lookup.
    learnt_size_histo: rlmul_obs::Histo,
}

impl Solver {
    /// An empty solver.
    pub fn new() -> Self {
        Solver {
            ok: true,
            var_inc: 1.0,
            clause_inc: 1.0,
            max_learnts: 0.0,
            learnt_size_histo: rlmul_obs::global()
                .histogram("rlmul_sat_learnt_clause_size", "Literals per learnt clause."),
            ..Default::default()
        }
    }

    /// Creates a fresh unassigned variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assign.len() as u32);
        self.assign.push(Lbool::Undef);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.phase.push(false);
        self.seen.push(false);
        self.model.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.order.grow();
        self.order.insert(v, &self.activity);
        v
    }

    /// Number of variables created so far.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Number of clauses (problem + learnt) currently stored.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Cumulative work counters.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Whether the clause set is still possibly satisfiable (turns
    /// `false` permanently once top-level unsatisfiability is known).
    pub fn is_ok(&self) -> bool {
        self.ok
    }

    fn lit_value(&self, l: Lit) -> Lbool {
        let v = self.assign[l.var().index()];
        if l.is_negated() {
            v.negate()
        } else {
            v
        }
    }

    fn decision_level(&self) -> usize {
        self.trail_lim.len()
    }

    /// Adds a clause, simplifying against the top-level assignment.
    /// Returns `false` when the clause set has become trivially
    /// unsatisfiable (the solver stays usable but every solve returns
    /// `Unsat`).
    ///
    /// # Panics
    ///
    /// Panics if called mid-search (clauses may only be added between
    /// solve calls) or with literals over undeclared variables.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        assert_eq!(self.decision_level(), 0, "clauses are added between solve calls");
        if !self.ok {
            return false;
        }
        // Sort/dedup; drop false literals; detect tautologies and
        // satisfied clauses.
        let mut c: Vec<Lit> = lits.to_vec();
        c.sort_unstable();
        c.dedup();
        let mut simplified: Vec<Lit> = Vec::with_capacity(c.len());
        for (i, &l) in c.iter().enumerate() {
            assert!(l.var().index() < self.num_vars(), "literal over undeclared variable");
            if self.lit_value(l) == Lbool::True {
                return true; // already satisfied at top level
            }
            if i + 1 < c.len() && c[i + 1] == !l {
                return true; // tautology x ∨ ¬x
            }
            if self.lit_value(l) != Lbool::False {
                simplified.push(l);
            }
        }
        match simplified.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.unchecked_enqueue(simplified[0], None);
                if self.propagate().is_some() {
                    self.ok = false;
                }
                self.ok
            }
            _ => {
                self.attach(simplified, false);
                true
            }
        }
    }

    fn attach(&mut self, lits: Vec<Lit>, learnt: bool) -> u32 {
        debug_assert!(lits.len() >= 2);
        let cref = self.clauses.len() as u32;
        let w0 = Watcher { cref, blocker: lits[1] };
        let w1 = Watcher { cref, blocker: lits[0] };
        self.watches[(!lits[0]).idx()].push(w0);
        self.watches[(!lits[1]).idx()].push(w1);
        let size = lits.len();
        self.clauses.push(Clause { lits, learnt, activity: 0.0 });
        if learnt {
            self.stats.learnt_clauses += 1;
            self.learnt_size_histo.observe(size as f64);
        }
        cref
    }

    fn unchecked_enqueue(&mut self, l: Lit, reason: Option<u32>) {
        let v = l.var().index();
        debug_assert_eq!(self.assign[v], Lbool::Undef);
        self.assign[v] = Lbool::from_bool(!l.is_negated());
        self.level[v] = self.decision_level() as u32;
        self.reason[v] = reason;
        self.trail.push(l);
    }

    /// Two-watched-literal unit propagation. Returns the conflicting
    /// clause reference, if any.
    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let mut ws = std::mem::take(&mut self.watches[p.idx()]);
            let mut kept = 0usize;
            let mut conflict = None;
            let mut i = 0usize;
            'watchers: while i < ws.len() {
                let w = ws[i];
                i += 1;
                if self.lit_value(w.blocker) == Lbool::True {
                    ws[kept] = w;
                    kept += 1;
                    continue;
                }
                let false_lit = !p;
                let cref = w.cref as usize;
                if self.clauses[cref].lits[0] == false_lit {
                    self.clauses[cref].lits.swap(0, 1);
                }
                debug_assert_eq!(self.clauses[cref].lits[1], false_lit);
                let first = self.clauses[cref].lits[0];
                if first != w.blocker && self.lit_value(first) == Lbool::True {
                    ws[kept] = Watcher { cref: w.cref, blocker: first };
                    kept += 1;
                    continue;
                }
                // Find a replacement watch.
                for k in 2..self.clauses[cref].lits.len() {
                    if self.lit_value(self.clauses[cref].lits[k]) != Lbool::False {
                        self.clauses[cref].lits.swap(1, k);
                        let new_watch = !self.clauses[cref].lits[1];
                        self.watches[new_watch.idx()]
                            .push(Watcher { cref: w.cref, blocker: first });
                        continue 'watchers;
                    }
                }
                // Unit or conflicting.
                ws[kept] = Watcher { cref: w.cref, blocker: first };
                kept += 1;
                if self.lit_value(first) == Lbool::False {
                    conflict = Some(w.cref);
                    // Keep the untouched tail of the watch list.
                    while i < ws.len() {
                        ws[kept] = ws[i];
                        kept += 1;
                        i += 1;
                    }
                    self.qhead = self.trail.len();
                } else {
                    self.unchecked_enqueue(first, Some(w.cref));
                }
            }
            ws.truncate(kept);
            self.watches[p.idx()] = ws;
            if conflict.is_some() {
                return conflict;
            }
        }
        None
    }

    /// First-UIP conflict analysis. Returns the learnt clause (with
    /// the asserting literal first) and the backtrack level.
    fn analyze(&mut self, mut confl: u32) -> (Vec<Lit>, usize) {
        let mut learnt: Vec<Lit> = vec![Lit(0)]; // slot 0 = asserting literal
        let mut path_count = 0u32;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let current = self.decision_level() as u32;
        loop {
            self.bump_clause(confl as usize);
            let skip = usize::from(p.is_some());
            for k in skip..self.clauses[confl as usize].lits.len() {
                let q = self.clauses[confl as usize].lits[k];
                let v = q.var().index();
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    self.bump_var(q.var());
                    if self.level[v] >= current {
                        path_count += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Walk the trail back to the next marked literal.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let pl = self.trail[index];
            let v = pl.var().index();
            self.seen[v] = false;
            path_count -= 1;
            p = Some(pl);
            if path_count == 0 {
                learnt[0] = !pl;
                break;
            }
            confl = self.reason[v].expect("non-decision literal on conflict path has a reason");
        }
        // Cheap recursive-free minimization: drop literals whose
        // reason clause is entirely subsumed by the rest of the
        // learnt clause.
        for l in &learnt {
            self.seen[l.var().index()] = true;
        }
        let keep: Vec<bool> =
            learnt.iter().enumerate().map(|(i, &l)| i == 0 || !self.redundant(l)).collect();
        for l in &learnt {
            self.seen[l.var().index()] = false;
        }
        let mut out: Vec<Lit> =
            learnt.into_iter().zip(keep).filter_map(|(l, k)| k.then_some(l)).collect();
        // Backtrack level: highest level among the non-asserting
        // literals; put that literal in watch position 1.
        let bt = if out.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..out.len() {
                if self.level[out[i].var().index()] > self.level[out[max_i].var().index()] {
                    max_i = i;
                }
            }
            out.swap(1, max_i);
            self.level[out[1].var().index()] as usize
        };
        (out, bt)
    }

    /// A learnt literal is redundant when its reason's literals are
    /// all already in the learnt clause (local self-subsumption).
    fn redundant(&self, l: Lit) -> bool {
        match self.reason[l.var().index()] {
            None => false,
            Some(cref) => self.clauses[cref as usize]
                .lits
                .iter()
                .skip(1)
                .all(|q| self.seen[q.var().index()] || self.level[q.var().index()] == 0),
        }
    }

    fn bump_var(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > RESCALE_LIMIT {
            for a in &mut self.activity {
                *a *= 1.0 / RESCALE_LIMIT;
            }
            self.var_inc *= 1.0 / RESCALE_LIMIT;
        }
        self.order.bumped(v, &self.activity);
    }

    fn bump_clause(&mut self, cref: usize) {
        if !self.clauses[cref].learnt {
            return;
        }
        self.clauses[cref].activity += self.clause_inc;
        if self.clauses[cref].activity > RESCALE_LIMIT {
            for c in &mut self.clauses {
                c.activity *= 1.0 / RESCALE_LIMIT;
            }
            self.clause_inc *= 1.0 / RESCALE_LIMIT;
        }
    }

    fn cancel_until(&mut self, level: usize) {
        if self.decision_level() <= level {
            return;
        }
        let bound = self.trail_lim[level];
        for i in (bound..self.trail.len()).rev() {
            let l = self.trail[i];
            let v = l.var();
            self.phase[v.index()] = !l.is_negated();
            self.assign[v.index()] = Lbool::Undef;
            self.reason[v.index()] = None;
            self.order.insert(v, &self.activity);
        }
        self.trail.truncate(bound);
        self.trail_lim.truncate(level);
        self.qhead = bound;
    }

    fn pick_branch_var(&mut self) -> Option<Var> {
        loop {
            let v = self.order.pop_max(&self.activity)?;
            if self.assign[v.index()] == Lbool::Undef {
                return Some(v);
            }
        }
    }

    /// Deletes the low-activity half of the learnt clauses. Must be
    /// called at decision level 0 (no outstanding reasons above the
    /// root level, so clause references can be compacted freely).
    fn reduce_db(&mut self) {
        debug_assert_eq!(self.decision_level(), 0);
        for r in &mut self.reason {
            *r = None; // root-level facts never need their reasons again
        }
        let mut learnt_acts: Vec<f64> = self
            .clauses
            .iter()
            .filter(|c| c.learnt && c.lits.len() > 2)
            .map(|c| c.activity)
            .collect();
        if learnt_acts.is_empty() {
            return;
        }
        learnt_acts.sort_by(|a, b| a.partial_cmp(b).expect("activities are finite"));
        let threshold = learnt_acts[learnt_acts.len() / 2];
        let before = self.clauses.len();
        let mut kept: Vec<Clause> = Vec::with_capacity(before);
        let mut deleted = 0u64;
        for c in self.clauses.drain(..) {
            if c.learnt && c.lits.len() > 2 && c.activity < threshold {
                deleted += 1;
            } else {
                kept.push(c);
            }
        }
        self.clauses = kept;
        self.stats.deleted_clauses += deleted;
        self.stats.learnt_clauses = self.clauses.iter().filter(|c| c.learnt).count();
        // Rebuild the watch lists against the compacted indices. The
        // previous watch positions stay valid for the root-level
        // assignment, so watching lits[0]/lits[1] again is sound.
        for w in &mut self.watches {
            w.clear();
        }
        for (i, c) in self.clauses.iter().enumerate() {
            let cref = i as u32;
            self.watches[(!c.lits[0]).idx()].push(Watcher { cref, blocker: c.lits[1] });
            self.watches[(!c.lits[1]).idx()].push(Watcher { cref, blocker: c.lits[0] });
        }
    }

    /// Reluctant-doubling (Luby) sequence: 1, 1, 2, 1, 1, 2, 4, …
    fn luby(mut x: u64) -> u64 {
        let mut size = 1u64;
        let mut seq = 0u32;
        while size < x + 1 {
            seq += 1;
            size = 2 * size + 1;
        }
        while size - 1 != x {
            size = (size - 1) / 2;
            seq -= 1;
            x %= size;
        }
        1u64 << seq
    }

    /// Solves the current clause set.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_limited(&[], u64::MAX)
    }

    /// Solves under `assumptions` (treated as first decisions).
    /// `Unsat` means unsatisfiable *under the assumptions*; the
    /// clause set itself may remain satisfiable.
    pub fn solve_with(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.solve_limited(assumptions, u64::MAX)
    }

    /// Solves with a conflict budget; returns [`SolveResult::Unknown`]
    /// when `max_conflicts` conflicts were analyzed without an answer.
    /// Learnt clauses are kept either way, so repeating the call
    /// resumes rather than restarts the proof.
    pub fn solve_limited(&mut self, assumptions: &[Lit], max_conflicts: u64) -> SolveResult {
        if !self.ok {
            return SolveResult::Unsat;
        }
        let obs = rlmul_obs::global();
        let _span = obs.span("sat.solve");
        let before = self.stats;
        debug_assert_eq!(self.decision_level(), 0);
        if self.max_learnts == 0.0 {
            self.max_learnts = (self.clauses.len() as f64 / 3.0).max(2000.0);
        }
        let mut spent = 0u64;
        let mut restart_round = 0u64;
        let result = loop {
            let mut budget = LUBY_UNIT * Self::luby(restart_round);
            restart_round += 1;
            self.stats.restarts += 1;
            match self.search(assumptions, &mut budget, &mut spent, max_conflicts) {
                Some(r) => break r,
                None => {
                    // Restart; reduce the learnt database when it
                    // outgrew its budget.
                    self.cancel_until(0);
                    if self.stats.learnt_clauses as f64 > self.max_learnts {
                        self.reduce_db();
                        self.max_learnts *= 1.3;
                    }
                    if spent >= max_conflicts {
                        break SolveResult::Unknown;
                    }
                }
            }
        };
        self.cancel_until(0);
        if obs.is_enabled() {
            // Mirror this call's work (not the solver's lifetime
            // totals) so scrape-to-scrape rates stay meaningful.
            let help = "CDCL solver work by kind, summed over solve calls.";
            for (kind, delta) in [
                ("conflicts", self.stats.conflicts - before.conflicts),
                ("decisions", self.stats.decisions - before.decisions),
                ("propagations", self.stats.propagations - before.propagations),
                ("restarts", self.stats.restarts - before.restarts),
                ("deleted_clauses", self.stats.deleted_clauses - before.deleted_clauses),
            ] {
                obs.labeled_counter("rlmul_sat_work_total", help, &[("kind", kind)]).add(delta);
            }
            obs.counter("rlmul_sat_solves_total", "SAT solve calls completed.").inc();
            obs.gauge("rlmul_sat_learnt_clauses", "Learnt clauses currently in the database.")
                .set(self.stats.learnt_clauses as f64);
        }
        result
    }

    /// One restart-bounded search episode. Returns `None` to restart.
    fn search(
        &mut self,
        assumptions: &[Lit],
        budget: &mut u64,
        spent: &mut u64,
        max_conflicts: u64,
    ) -> Option<SolveResult> {
        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                *spent += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    return Some(SolveResult::Unsat);
                }
                let (learnt, bt) = self.analyze(confl);
                self.cancel_until(bt);
                if learnt.len() == 1 {
                    self.unchecked_enqueue(learnt[0], None);
                } else {
                    let asserting = learnt[0];
                    let cref = self.attach(learnt, true);
                    self.bump_clause(cref as usize);
                    self.unchecked_enqueue(asserting, Some(cref));
                }
                self.var_inc /= VAR_DECAY;
                self.clause_inc /= CLAUSE_DECAY;
                if *spent >= max_conflicts {
                    return None; // budget exhausted → caller decides
                }
                if *budget == 0 {
                    return None;
                }
                *budget -= 1;
            } else {
                // Place assumptions one level at a time.
                if self.decision_level() < assumptions.len() {
                    let a = assumptions[self.decision_level()];
                    match self.lit_value(a) {
                        Lbool::True => {
                            // Already implied: dummy level keeps the
                            // level ↔ assumption-index correspondence.
                            self.trail_lim.push(self.trail.len());
                        }
                        Lbool::False => return Some(SolveResult::Unsat),
                        Lbool::Undef => {
                            self.trail_lim.push(self.trail.len());
                            self.unchecked_enqueue(a, None);
                        }
                    }
                    continue;
                }
                match self.pick_branch_var() {
                    None => {
                        for (i, &a) in self.assign.iter().enumerate() {
                            self.model[i] = a == Lbool::True;
                        }
                        return Some(SolveResult::Sat);
                    }
                    Some(v) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        let lit = Lit::new(v, !self.phase[v.index()]);
                        self.unchecked_enqueue(lit, None);
                    }
                }
            }
        }
    }

    /// Value of `v` in the most recent satisfying assignment.
    ///
    /// Only meaningful after a [`SolveResult::Sat`] answer.
    pub fn model_value(&self, v: Var) -> bool {
        self.model[v.index()]
    }

    /// Value of a literal in the most recent satisfying assignment.
    pub fn model_lit(&self, l: Lit) -> bool {
        self.model_value(l.var()) ^ l.is_negated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(solver: &mut Solver, n: usize) -> Vec<Lit> {
        (0..n).map(|_| Lit::pos(solver.new_var())).collect()
    }

    #[test]
    fn trivial_sat_and_unsat() {
        let mut s = Solver::new();
        let x = Lit::pos(s.new_var());
        assert!(s.add_clause(&[x]));
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(s.model_lit(x));
        assert!(!s.add_clause(&[!x]));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn empty_clause_set_is_sat() {
        let mut s = Solver::new();
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn tautologies_and_duplicates_are_simplified() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        assert!(s.add_clause(&[v[0], !v[0]]));
        assert!(s.add_clause(&[v[1], v[1], v[1]]));
        assert_eq!(s.num_clauses(), 0); // tautology dropped, unit enqueued
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(s.model_lit(v[1]));
    }

    /// Pigeonhole principle: `n+1` pigeons don't fit `n` holes.
    fn pigeonhole(pigeons: usize, holes: usize) -> Solver {
        let mut s = Solver::new();
        let var = |p: usize, h: usize| p * holes + h;
        let all: Vec<Lit> = (0..pigeons * holes).map(|_| Lit::pos(s.new_var())).collect();
        for p in 0..pigeons {
            let row: Vec<Lit> = (0..holes).map(|h| all[var(p, h)]).collect();
            s.add_clause(&row);
        }
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in (p1 + 1)..pigeons {
                    s.add_clause(&[!all[var(p1, h)], !all[var(p2, h)]]);
                }
            }
        }
        s
    }

    #[test]
    fn pigeonhole_unsat() {
        for holes in [2usize, 3, 4, 5] {
            let mut s = pigeonhole(holes + 1, holes);
            assert_eq!(s.solve(), SolveResult::Unsat, "PHP({}, {holes})", holes + 1);
        }
    }

    #[test]
    fn pigeonhole_sat_when_it_fits() {
        let mut s = pigeonhole(4, 4);
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn conflict_budget_returns_unknown_and_resumes() {
        let mut s = pigeonhole(7, 6);
        assert_eq!(s.solve_limited(&[], 1), SolveResult::Unknown);
        // Learnt clauses persist; an unbounded call finishes the proof.
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn assumptions_are_local() {
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        s.add_clause(&[v[0], v[1]]);
        s.add_clause(&[!v[0], v[2]]);
        assert_eq!(s.solve_with(&[!v[1], !v[2]]), SolveResult::Unsat);
        assert_eq!(s.solve_with(&[!v[1]]), SolveResult::Sat);
        assert!(s.model_lit(v[0]) && s.model_lit(v[2]));
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn contradictory_assumptions_fail_fast() {
        let mut s = Solver::new();
        let v = lits(&mut s, 1);
        assert_eq!(s.solve_with(&[v[0], !v[0]]), SolveResult::Unsat);
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn incremental_clause_addition() {
        let mut s = Solver::new();
        let v = lits(&mut s, 4);
        s.add_clause(&[v[0], v[1]]);
        assert_eq!(s.solve(), SolveResult::Sat);
        s.add_clause(&[!v[0]]);
        s.add_clause(&[!v[1], v[2]]);
        s.add_clause(&[!v[2], v[3]]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(s.model_lit(v[1]) && s.model_lit(v[2]) && s.model_lit(v[3]));
    }

    #[test]
    fn luby_sequence_prefix() {
        let seq: Vec<u64> = (0..15).map(Solver::luby).collect();
        assert_eq!(seq, vec![1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]);
    }

    /// Exhaustive cross-check against brute force on random small CNFs.
    #[test]
    fn agrees_with_brute_force_on_random_cnfs() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xC0FFEE);
        for round in 0..200 {
            let n_vars = 3 + (round % 8);
            let n_clauses = 2 + rng.gen_range(0..(4 * n_vars));
            let clauses: Vec<Vec<(usize, bool)>> = (0..n_clauses)
                .map(|_| {
                    let w = 1 + rng.gen_range(0..3usize);
                    (0..w).map(|_| (rng.gen_range(0..n_vars), rng.gen::<bool>())).collect()
                })
                .collect();
            let brute = (0..(1u32 << n_vars)).any(|m| {
                clauses.iter().all(|c| c.iter().any(|&(v, neg)| ((m >> v) & 1 == 1) != neg))
            });
            let mut s = Solver::new();
            let vars: Vec<Var> = (0..n_vars).map(|_| s.new_var()).collect();
            for c in &clauses {
                let lits: Vec<Lit> = c.iter().map(|&(v, neg)| Lit::new(vars[v], neg)).collect();
                s.add_clause(&lits);
            }
            let got = s.solve();
            let expected = if brute { SolveResult::Sat } else { SolveResult::Unsat };
            assert_eq!(got, expected, "round {round}: {clauses:?}");
            if got == SolveResult::Sat {
                // The reported model must actually satisfy the CNF.
                for c in &clauses {
                    assert!(
                        c.iter().any(|&(v, neg)| s.model_value(vars[v]) != neg),
                        "model fails clause {c:?}"
                    );
                }
            }
        }
    }
}
