//! Resume-determinism acceptance tests: a run interrupted at step N
//! and resumed from its snapshot must replay the exact trajectory of
//! the uninterrupted run — bit-identical costs, not merely close.
//!
//! Each test performs one full training run with periodic pinned
//! checkpoints (`keep_history`), then resumes from the *mid-run*
//! snapshot and compares the resumed trajectory (prefix restored from
//! the snapshot + freshly computed suffix) against the uninterrupted
//! one. Any single-ULP divergence in RNG streams, network weights,
//! batch-norm statistics, optimizer moments, replay contents or cached
//! costs would change an action somewhere and break the equality.

use rlmul_ckpt::SnapshotStore;
use rlmul_core::{
    resume_a2c, resume_dqn, train_a2c_with, train_dqn_with, A2cConfig, A2cSnapshot, DqnConfig,
    DqnSnapshot, EnvConfig, EvalCache, MulEnv, OptimizationOutcome, TrainHooks,
};
use rlmul_ct::PpgKind;
use rlmul_nn::TrunkConfig;
use std::path::PathBuf;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rlmul-resume-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn assert_bit_identical(full: &OptimizationOutcome, resumed: &OptimizationOutcome) {
    assert_eq!(full.trajectory.len(), resumed.trajectory.len());
    for (i, (a, b)) in full.trajectory.iter().zip(&resumed.trajectory).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "trajectory diverged at step {i}: {a} vs {b}");
    }
    assert_eq!(full.best_cost.to_bits(), resumed.best_cost.to_bits());
    assert_eq!(full.best, resumed.best);
}

#[test]
fn dqn_resume_replays_the_uninterrupted_trajectory() {
    let env_cfg = EnvConfig::new(4, PpgKind::And);
    let config = DqnConfig {
        steps: 12,
        warmup: 4,
        batch_size: 4,
        trunk: TrunkConfig { in_channels: 2, channels: vec![4, 8], blocks_per_stage: 1 },
        ..Default::default()
    };

    let dir = scratch_dir("dqn");
    let store = SnapshotStore::new(&dir, "dqn");
    let hooks = TrainHooks {
        store: Some(store.clone()),
        checkpoint_every: 6,
        keep_history: true,
        ..Default::default()
    };
    let mut env = MulEnv::new(env_cfg.clone()).unwrap();
    let full = train_dqn_with(&mut env, &config, &hooks, None).unwrap();
    assert_eq!(full.trajectory.len(), 12);

    // The pinned mid-run snapshot survived the later checkpoints.
    let snap: DqnSnapshot = store.load_step(6).unwrap();
    assert_eq!(snap.step(), 6);
    let resumed = resume_dqn(&env_cfg, &config, snap, &TrainHooks::default()).unwrap();
    assert_bit_identical(&full, &resumed);

    // The shutdown snapshot holds the completed run: resuming from it
    // is a no-op that returns the same outcome.
    let done: DqnSnapshot = store.load_latest().unwrap();
    assert_eq!(done.step(), 12);
    let noop = resume_dqn(&env_cfg, &config, done, &TrainHooks::default()).unwrap();
    assert_bit_identical(&full, &noop);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn a2c_resume_replays_the_uninterrupted_trajectory() {
    let env_cfg = EnvConfig::new(4, PpgKind::And);
    let config = A2cConfig {
        steps: 10,
        n_envs: 2,
        n_step: 3,
        trunk: TrunkConfig { in_channels: 2, channels: vec![4, 8], blocks_per_stage: 1 },
        ..Default::default()
    };

    let dir = scratch_dir("a2c");
    let store = SnapshotStore::new(&dir, "a2c");
    let hooks = TrainHooks {
        store: Some(store.clone()),
        checkpoint_every: 5,
        keep_history: true,
        ..Default::default()
    };
    let full = train_a2c_with(&env_cfg, &config, EvalCache::new(), &hooks, None).unwrap();
    assert_eq!(full.trajectory.len(), 10);

    let snap: A2cSnapshot = store.load_step(5).unwrap();
    assert_eq!(snap.step(), 5);
    let resumed = resume_a2c(&env_cfg, &config, snap, &TrainHooks::default()).unwrap();
    assert_bit_identical(&full, &resumed);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn dqn_rejects_snapshot_beyond_the_step_budget() {
    let env_cfg = EnvConfig::new(4, PpgKind::And);
    let config = DqnConfig {
        steps: 4,
        warmup: 2,
        batch_size: 2,
        trunk: TrunkConfig { in_channels: 2, channels: vec![4], blocks_per_stage: 1 },
        ..Default::default()
    };
    let dir = scratch_dir("dqn-budget");
    let store = SnapshotStore::new(&dir, "dqn");
    let hooks = TrainHooks { store: Some(store.clone()), ..Default::default() };
    let mut env = MulEnv::new(env_cfg.clone()).unwrap();
    train_dqn_with(&mut env, &config, &hooks, None).unwrap();
    let snap: DqnSnapshot = store.load_latest().unwrap();

    // Shrinking the budget below the snapshot's step is an error, not
    // a silent no-op with a half-restored agent.
    let short = DqnConfig { steps: 2, ..config };
    assert!(resume_dqn(&env_cfg, &short, snap, &TrainHooks::default()).is_err());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn dqn_snapshot_mismatched_environment_is_rejected() {
    let env_cfg = EnvConfig::new(4, PpgKind::And);
    let config = DqnConfig {
        steps: 3,
        warmup: 3,
        batch_size: 2,
        trunk: TrunkConfig { in_channels: 2, channels: vec![4], blocks_per_stage: 1 },
        ..Default::default()
    };
    let dir = scratch_dir("dqn-mismatch");
    let store = SnapshotStore::new(&dir, "dqn");
    let hooks = TrainHooks { store: Some(store.clone()), ..Default::default() };
    let mut env = MulEnv::new(env_cfg.clone()).unwrap();
    train_dqn_with(&mut env, &config, &hooks, None).unwrap();
    let snap: DqnSnapshot = store.load_latest().unwrap();

    // A 4-bit snapshot cannot resume an 8-bit run.
    let other = EnvConfig::new(8, PpgKind::And);
    assert!(resume_dqn(&other, &config, snap, &TrainHooks::default()).is_err());
    std::fs::remove_dir_all(&dir).unwrap();
}
