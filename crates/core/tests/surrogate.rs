//! Acceptance tests for the online learned surrogate evaluator:
//! resume determinism with screening active, prediction-error
//! telemetry, and the synthesis-call contract (screened proposals
//! must not reach the synthesis pipeline or the evaluation cache).
//!
//! The configs force the surrogate warm early (`min_samples` far
//! below the step budget) so every run here actually screens;
//! a surrogate that never fires would pass these tests vacuously.

use rlmul_baselines::SaConfig;
use rlmul_ckpt::SnapshotStore;
use rlmul_core::{
    resume_sa, run_sa, run_sa_with, EnvConfig, EvalCache, OptimizationOutcome, SaSnapshot,
    TrainHooks,
};
use rlmul_ct::PpgKind;
use rlmul_telemetry::TelemetryWriter;
use std::path::PathBuf;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rlmul-surrogate-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// An 8-bit config whose surrogate warms up quickly enough to screen
/// within a short test run.
fn surrogate_env() -> EnvConfig {
    let mut cfg = EnvConfig::new(8, PpgKind::And);
    cfg.surrogate.enabled = true;
    cfg.surrogate.min_samples = 6;
    cfg.surrogate.refresh_every = 4;
    cfg
}

fn assert_bit_identical(full: &OptimizationOutcome, resumed: &OptimizationOutcome) {
    assert_eq!(full.trajectory.len(), resumed.trajectory.len());
    for (i, (a, b)) in full.trajectory.iter().zip(&resumed.trajectory).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "trajectory diverged at step {i}: {a} vs {b}");
    }
    assert_eq!(full.best_cost.to_bits(), resumed.best_cost.to_bits());
    assert_eq!(full.best, resumed.best);
    // The Pareto point stream covers the verification sweep too: a
    // watchlist lost (or reordered) across the snapshot boundary
    // would surface here even when the walk itself matched.
    assert_eq!(full.pareto_points.len(), resumed.pareto_points.len());
    for (i, (a, b)) in full.pareto_points.iter().zip(&resumed.pareto_points).enumerate() {
        assert_eq!(a.0.to_bits(), b.0.to_bits(), "pareto area diverged at point {i}");
        assert_eq!(a.1.to_bits(), b.1.to_bits(), "pareto delay diverged at point {i}");
    }
}

#[test]
fn sa_resume_is_bit_identical_with_surrogate_on() {
    let env_cfg = surrogate_env();
    let full_cfg = SaConfig { steps: 40, ..Default::default() };

    // One full run with a pinned mid-run checkpoint. (A shorter run's
    // shutdown snapshot would not do: a *completed* run sweeps its
    // verification watchlist first, so its final state is legitimately
    // ahead of the same step mid-flight.)
    let dir = scratch_dir("resume");
    let store = SnapshotStore::new(&dir, "sa");
    let hooks = TrainHooks {
        store: Some(store.clone()),
        checkpoint_every: 20,
        keep_history: true,
        ..Default::default()
    };
    let full = run_sa_with(&env_cfg, &full_cfg, 7, EvalCache::new(), &hooks, None).unwrap();
    assert!(full.pipeline.surrogate_screened > 0, "test must exercise screening");

    // Resume from the step-20 snapshot — MLP weights, Adam moments,
    // replay ring, honesty counter and verification watchlist all
    // cross the snapshot boundary.
    let snap: SaSnapshot = store.load_step(20).unwrap();
    assert_eq!(snap.steps_done(), 20);
    let resumed = resume_sa(&env_cfg, &full_cfg, snap, &TrainHooks::default()).unwrap();

    assert_bit_identical(&full, &resumed);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn surrogate_emits_mae_telemetry() {
    let path = scratch_dir("telemetry").join("events.jsonl");
    let (writer, sink) = TelemetryWriter::create(&path).unwrap();
    let hooks = TrainHooks { telemetry: sink, ..Default::default() };
    let env_cfg = surrogate_env();
    let sa_cfg = SaConfig { steps: 30, ..Default::default() };
    run_sa_with(&env_cfg, &sa_cfg, 3, EvalCache::new(), &hooks, None).unwrap();
    writer.close().unwrap();

    let text = std::fs::read_to_string(&path).unwrap();
    let surrogate_events: Vec<_> = text
        .lines()
        .filter_map(|l| rlmul_telemetry::Event::parse_json(l).ok())
        .filter(|e| e.kind() == "surrogate")
        .collect();
    assert!(!surrogate_events.is_empty(), "expected surrogate telemetry events");
    let last = surrogate_events.last().unwrap();
    for key in ["area_mae", "delay_mae", "area_mae_0", "delay_mae_0"] {
        let v = last.get_f64(key).unwrap_or_else(|| panic!("missing {key} field"));
        assert!(v.is_finite() && v >= 0.0, "{key} must be a finite non-negative MAE, got {v}");
    }
    std::fs::remove_dir_all(path.parent().unwrap()).unwrap();
}

#[test]
fn screening_cuts_synthesis_calls_without_touching_the_cache() {
    let sa_cfg = SaConfig { steps: 60, ..Default::default() };
    let mut off_cfg = surrogate_env();
    off_cfg.surrogate.enabled = false;
    let off = run_sa(&off_cfg, &sa_cfg, 5).unwrap();
    let on = run_sa(&surrogate_env(), &sa_cfg, 5).unwrap();

    assert_eq!(off.pipeline.surrogate_screened, 0);
    assert!(on.pipeline.surrogate_screened > 0);
    assert!(
        on.pipeline.synthesis_calls < off.pipeline.synthesis_calls,
        "screening must reduce synthesis calls: {} vs {}",
        on.pipeline.synthesis_calls,
        off.pipeline.synthesis_calls
    );
    // Screened evaluations are answered from the model: they must not
    // materialize as cache entries. Every cache entry therefore
    // corresponds to a real (synthesized) evaluation.
    assert_eq!(on.pipeline.cache_entries, on.pipeline.cache_misses);
    assert!(on.pipeline.cache_entries < off.pipeline.cache_entries);
}
