//! Model-checked interleavings of the evaluation cache's in-flight
//! coalescing protocol.
//!
//! These tests run real `EvalCache` code under the deterministic
//! scheduler in `rlmul_check::sched`, which serializes the threads and
//! explores every interleaving up to a preemption bound. A failing
//! execution panics with a `FailureReport` whose printed schedule can
//! be replayed verbatim via `Model::replay` (see EXPERIMENTS.md).
//!
//! Invariants checked exhaustively at small bounds:
//! - at most one worker per key ever becomes the producer (no
//!   duplicated synthesis), and every other worker observes its value
//!   (no lost wakeup on the in-flight condvar);
//! - abandoning a ticket (producer failure) always releases the
//!   waiters to retry instead of deadlocking them.

use rlmul_check::sched::Model;
use rlmul_check::sync::spawn_named;
use rlmul_core::{CacheKey, EvalCache, Evaluation, Lookup};
use rlmul_ct::PpgKind;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn key() -> CacheKey {
    CacheKey { counts: vec![(3, 1)], kind: PpgKind::And, context: 11 }
}

fn eval(cost: f64) -> Arc<Evaluation> {
    Arc::new(Evaluation { reports: Vec::new(), cost })
}

#[test]
fn coalescing_never_duplicates_synthesis() {
    let model = Model::default();
    let outcome = model.explore(&|| {
        let cache = EvalCache::new();
        let produced = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|i| {
                let cache = cache.clone();
                let produced = produced.clone();
                spawn_named(&format!("worker-{i}"), move || match cache.lookup_or_begin(&key()) {
                    Lookup::Miss(ticket) => {
                        produced.fetch_add(1, Ordering::Relaxed);
                        ticket.complete(eval(4.0));
                        4.0
                    }
                    Lookup::Hit(e) => e.cost,
                })
            })
            .collect();
        for h in handles {
            // Hits must carry the producer's value: a waiter woken
            // before the entry landed would observe something else or
            // hang (the scheduler reports the hang as a deadlock).
            assert_eq!(h.join().expect("worker panicked"), 4.0);
        }
        assert_eq!(produced.load(Ordering::Relaxed), 1, "exactly one worker may synthesize");
    });
    assert!(
        outcome.failure.is_none(),
        "{}",
        outcome.failure.map(|f| f.render()).unwrap_or_default()
    );
    assert!(outcome.complete, "state space must be exhausted at the default bound");
    assert!(outcome.executions > 1, "scenario must have more than one interleaving");
}

#[test]
fn abandoned_ticket_releases_waiters() {
    let model = Model::default();
    model.check(|| {
        let cache = EvalCache::new();
        let Lookup::Miss(ticket) = cache.lookup_or_begin(&key()) else {
            panic!("fresh key must miss");
        };
        let waiter = {
            let cache = cache.clone();
            spawn_named("waiter", move || match cache.lookup_or_begin(&key()) {
                // Whether the waiter parks on the pending slot first or
                // arrives after the abandonment, it must end up as the
                // new producer — the dropped ticket leaves no entry.
                Lookup::Miss(t) => {
                    t.complete(eval(1.0));
                    true
                }
                Lookup::Hit(_) => false,
            })
        };
        // Producer fails: dropping the ticket must notify all waiters,
        // or the waiter deadlocks (which the scheduler detects).
        drop(ticket);
        assert!(waiter.join().expect("waiter panicked"), "waiter must become the next producer");
        assert_eq!(cache.len(), 1);
    });
}
