//! Property tests for the evaluation cache's checkpoint round-trip:
//! `export_entries` → `import` must preserve the entry count, every
//! lookup result and the deterministic export order, regardless of
//! how the random keys land across the cache's shards. The generator
//! draws from a deliberately small key space (short count vectors,
//! few contexts) so collisions inside one shard and spreads across
//! shards are both exercised.

use proptest::prelude::*;
use rlmul_core::{CacheKey, EvalCache, Evaluation, Lookup};
use rlmul_ct::PpgKind;
use rlmul_synth::SynthesisReport;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Raw key tuple as drawn by the generator: compressor counts, a
/// PPG-kind pick, and a context fingerprint.
type RawKey = (Vec<(u32, u32)>, u8, u64);

fn kind_of(pick: usize) -> PpgKind {
    [PpgKind::And, PpgKind::Mbe, PpgKind::MacAnd][pick % 3]
}

/// A synthetic evaluation whose numbers are derived from `tag`, so
/// two evaluations compare equal iff their tags match.
fn eval_of(tag: u32, reports: usize) -> Evaluation {
    let reports = (0..reports)
        .map(|i| SynthesisReport {
            area_um2: 100.0 + f64::from(tag) + i as f64,
            delay_ns: 1.0 + f64::from(tag) / 64.0,
            power_mw: 0.5 + i as f64 / 8.0,
            target_delay_ns: Some(1.0 + i as f64 / 4.0),
            met_target: tag.is_multiple_of(2),
            drive_histogram: [tag as usize, i, 0],
            sizing_moves: i,
            num_cells: 10 + tag as usize,
            sta: Default::default(),
        })
        .collect();
    Evaluation { reports, cost: 9.0 + f64::from(tag) / 7.0 }
}

/// Field-wise equality ([`Evaluation`] itself does not implement
/// `PartialEq`); the cost is compared bit-exactly.
fn eval_eq(a: &Evaluation, b: &Evaluation) -> bool {
    a.cost.to_bits() == b.cost.to_bits() && a.reports == b.reports
}

/// Stress the cache with checkpoint traffic racing live lookups:
/// worker threads hammer a small key space (forcing both coalesced
/// waits and producer handoffs) while one thread repeatedly exports
/// and another imports a disjoint snapshot. The exercise must not
/// deadlock or panic, every export must come out in the deterministic
/// sorted order regardless of in-flight mutation, and afterwards the
/// cache must answer every key with the value its producer installed.
#[test]
fn concurrent_export_import_during_coalesced_lookups() {
    const TAGS: u32 = 8;
    const ROUNDS: usize = 200;

    let cache = EvalCache::new();
    let key_of =
        |tag: u32, context: u64| CacheKey { counts: vec![(tag, 0)], kind: PpgKind::And, context };
    // A snapshot in a context live workers never touch.
    let foreign: Vec<(CacheKey, Evaluation)> =
        (0..TAGS).map(|t| (key_of(t, 99), eval_of(t + 100, 1))).collect();

    std::thread::scope(|scope| {
        for w in 0..4 {
            let cache = cache.clone();
            scope.spawn(move || {
                for round in 0..ROUNDS {
                    let tag = (round as u32 + w) % TAGS;
                    match cache.lookup_or_begin(&key_of(tag, 7)) {
                        Lookup::Miss(ticket) => ticket.complete(Arc::new(eval_of(tag, 1))),
                        Lookup::Hit(e) => {
                            assert_eq!(e.cost.to_bits(), eval_of(tag, 1).cost.to_bits());
                        }
                    }
                }
            });
        }
        {
            let cache = cache.clone();
            scope.spawn(move || {
                for _ in 0..ROUNDS {
                    let exported = cache.export_entries();
                    for pair in exported.windows(2) {
                        let a = &pair[0].0;
                        let b = &pair[1].0;
                        assert!(
                            (&a.counts, a.kind as u8, a.context)
                                < (&b.counts, b.kind as u8, b.context),
                            "mid-flight export must stay sorted"
                        );
                    }
                }
            });
        }
        {
            let cache = cache.clone();
            let foreign = foreign.clone();
            scope.spawn(move || {
                for chunk in foreign.chunks(2) {
                    cache.import(chunk.to_vec());
                }
            });
        }
    });

    for tag in 0..TAGS {
        let live = cache.peek(&key_of(tag, 7)).expect("worker-produced key must be present");
        assert_eq!(live.cost.to_bits(), eval_of(tag, 1).cost.to_bits());
        let imported = cache.peek(&key_of(tag, 99)).expect("imported key must be present");
        assert_eq!(imported.cost.to_bits(), eval_of(tag + 100, 1).cost.to_bits());
    }
    assert_eq!(cache.len(), 2 * TAGS as usize);
    let stats = cache.stats();
    assert_eq!(stats.entries, 2 * TAGS as usize);
    assert!(stats.misses >= TAGS as usize, "each live key was produced at least once");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn export_import_round_trip_preserves_entries_and_lookups(
        raw in prop::collection::vec(
            // (counts, kind pick, context, report count)
            (
                prop::collection::vec((0u32..6, 0u32..6), 1..8),
                0usize..3,
                0u64..4,
                0usize..3,
            ),
            1..60,
        )
    ) {
        // Deduplicate drawn keys the way a run would (one evaluation
        // per distinct state): last write wins in the source map.
        let mut source: BTreeMap<RawKey, Evaluation> = BTreeMap::new();
        for (i, (counts, kind_pick, context, reports)) in raw.iter().enumerate() {
            source.insert(
                (counts.clone(), *kind_pick as u8, *context),
                eval_of(i as u32, *reports),
            );
        }
        let entries: Vec<(CacheKey, Evaluation)> = source
            .iter()
            .map(|((counts, kind_pick, context), eval)| {
                (
                    CacheKey {
                        counts: counts.clone(),
                        kind: kind_of(usize::from(*kind_pick)),
                        context: *context,
                    },
                    eval.clone(),
                )
            })
            .collect();

        let original = EvalCache::new();
        prop_assert_eq!(original.import(entries.clone()), entries.len());
        prop_assert_eq!(original.len(), entries.len());

        // Round-trip through the checkpoint representation.
        let exported = original.export_entries();
        prop_assert_eq!(exported.len(), entries.len());
        let restored = EvalCache::new();
        prop_assert_eq!(restored.import(exported.clone()), entries.len());
        prop_assert_eq!(restored.len(), original.len());

        // Every key answers identically on both caches.
        for (key, eval) in &entries {
            let a = original.peek(key).expect("original must hold every imported key");
            let b = restored.peek(key).expect("restored must hold every imported key");
            prop_assert!(eval_eq(&a, eval), "original lookup diverged for {key:?}");
            prop_assert!(eval_eq(&a, &b), "restored lookup diverged for {key:?}");
        }
        prop_assert_eq!(restored.stats().entries, original.stats().entries);

        // Exports are deterministic and stable across the round-trip
        // (sorted by key, independent of shard iteration order).
        let re_exported = restored.export_entries();
        prop_assert_eq!(exported.len(), re_exported.len());
        for ((ka, ea), (kb, eb)) in exported.iter().zip(&re_exported) {
            prop_assert_eq!(ka, kb);
            prop_assert!(eval_eq(ea, eb), "re-export diverged for {ka:?}");
        }

        // Importing again must be a no-op: existing keys are kept.
        prop_assert_eq!(restored.import(original.export_entries()), 0);
        prop_assert_eq!(restored.len(), entries.len());
    }
}
