//! Native RL-MUL: deep Q-learning over compressor-tree states
//! (paper Algorithm 3).
//!
//! The Q-network is a residual CNN over the tensor representation; a
//! validity mask zeroes illegal actions before the argmax (Eqs. 5–8).
//! Transitions go to a replay buffer; updates regress the masked
//! Q-values toward the bootstrapped target of Eq. 11 with RMSProp, as
//! in the paper.

use crate::cache::{CacheKey, EvalCache};
use crate::env::{EnvConfig, EnvSnapshot, Evaluation, MulEnv};
use crate::hooks::{emit_span_events, TrainHooks};
use crate::outcome::{OptimizationOutcome, PipelineStats};
use crate::RlMulError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rlmul_nn::{
    clip_grad_norm, masked_argmax, restore_net, snapshot_net, Layer, Linear, NetSnapshot, NnStats,
    Optimizer, Param, RmsProp, Sequential, Tensor, TrunkConfig,
};
use rlmul_telemetry::Event;
use std::collections::VecDeque;

/// DQN hyper-parameters. Defaults follow the paper where stated
/// (γ = 0.8, ε: 0.95 → 0.05, RMSProp); budgets are scaled down from
/// the paper's 10 000 s wall-clock to step counts.
#[derive(Debug, Clone)]
pub struct DqnConfig {
    /// Total environment steps `T`.
    pub steps: usize,
    /// Warm-up steps `T_B` with uniformly random legal actions.
    pub warmup: usize,
    /// Discount factor γ.
    pub gamma: f32,
    /// Initial exploration rate.
    pub epsilon_start: f32,
    /// Final exploration rate.
    pub epsilon_end: f32,
    /// Replay batch size.
    pub batch_size: usize,
    /// Replay buffer capacity.
    pub replay_capacity: usize,
    /// RMSProp learning rate.
    pub lr: f32,
    /// Gradient-norm clip.
    pub grad_clip: f32,
    /// Agent-network trunk.
    pub trunk: TrunkConfig,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DqnConfig {
    fn default() -> Self {
        DqnConfig {
            steps: 120,
            warmup: 20,
            gamma: 0.8,
            epsilon_start: 0.95,
            epsilon_end: 0.05,
            batch_size: 8,
            replay_capacity: 2000,
            lr: 1e-3,
            grad_clip: 5.0,
            trunk: TrunkConfig { in_channels: 2, channels: vec![8, 16, 32], blocks_per_stage: 1 },
            seed: 0,
        }
    }
}

/// The Q-network: residual trunk plus a linear head emitting one
/// Q-value per action (paper Eq. 5).
pub struct QNetwork {
    trunk: Sequential,
    head: Linear,
}

impl std::fmt::Debug for QNetwork {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "QNetwork({:?})", self.trunk)
    }
}

impl QNetwork {
    /// Builds a Q-network for `actions` outputs.
    pub fn new<R: Rng + ?Sized>(trunk_cfg: &TrunkConfig, actions: usize, rng: &mut R) -> Self {
        let trunk = rlmul_nn::build_trunk(trunk_cfg, rng);
        let mut head = Linear::new(trunk_cfg.feature_dim(), actions, rng);
        // Small initial Q-values stabilize the first bootstraps.
        head.scale_parameters(0.01);
        QNetwork { trunk, head }
    }
}

impl Layer for QNetwork {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let f = self.trunk.forward(x, train);
        self.head.forward(&f, train)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let g = self.head.backward(grad_out);
        self.trunk.backward(&g)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.trunk.visit_params(f);
        self.head.visit_params(f);
    }

    fn visit_state(&mut self, f: &mut dyn FnMut(&mut Vec<f32>)) {
        self.trunk.visit_state(f);
        self.head.visit_state(f);
    }
}

#[derive(Debug, Clone)]
pub(crate) struct Transition {
    pub(crate) state: Vec<f32>,
    pub(crate) action: usize,
    pub(crate) reward: f32,
    pub(crate) next_state: Vec<f32>,
    pub(crate) next_mask: Vec<bool>,
}

/// Complete training state of a DQN run at a step boundary: agent
/// weights (including batch-norm running statistics), optimizer
/// moments, the replay buffer, the RNG stream, the environment's
/// mutable state and every finished evaluation-cache entry.
///
/// Opaque outside the crate: produced by checkpointing runs
/// ([`train_dqn_with`] with a store), serialized through
/// [`rlmul_ckpt::Record`], consumed by [`resume_dqn`]. A run resumed
/// from a snapshot replays the exact trajectory of an uninterrupted
/// run with the same configuration.
pub struct DqnSnapshot {
    pub(crate) step: usize,
    pub(crate) rng: [u64; 4],
    pub(crate) net: NetSnapshot,
    pub(crate) opt: Vec<Tensor>,
    pub(crate) replay: Vec<Transition>,
    pub(crate) trajectory: Vec<f64>,
    pub(crate) state: Vec<f32>,
    pub(crate) env: EnvSnapshot,
    pub(crate) cache: Vec<(CacheKey, Evaluation)>,
}

impl DqnSnapshot {
    /// Environment steps completed when the snapshot was taken.
    pub fn step(&self) -> usize {
        self.step
    }

    /// Best cost found up to the snapshot.
    pub fn best_cost(&self) -> f64 {
        self.env.best_cost()
    }
}

impl std::fmt::Debug for DqnSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "DqnSnapshot(step {}, {} replay, {} cache entries)",
            self.step,
            self.replay.len(),
            self.cache.len()
        )
    }
}

/// Runs paper Algorithm 3 on `env`.
///
/// # Errors
///
/// Propagates environment (elaboration/synthesis) errors.
pub fn train_dqn(env: &mut MulEnv, config: &DqnConfig) -> Result<OptimizationOutcome, RlMulError> {
    train_dqn_with(env, config, &TrainHooks::default(), None)
}

/// Rebuilds the training run captured in `snapshot` and continues it
/// to `config.steps`. The snapshot's cache entries are imported
/// before the environment is constructed, so every previously
/// synthesized state — including the anchor run — is a cache hit and
/// the resumed run is bit-identical to an uninterrupted one.
///
/// # Errors
///
/// As [`train_dqn`], plus configuration/snapshot mismatches.
pub fn resume_dqn(
    env_config: &EnvConfig,
    config: &DqnConfig,
    snapshot: DqnSnapshot,
    hooks: &TrainHooks,
) -> Result<OptimizationOutcome, RlMulError> {
    resume_dqn_cached(env_config, config, snapshot, EvalCache::new(), hooks)
}

/// [`resume_dqn`] on top of a caller-supplied (typically shared)
/// evaluation cache: the snapshot's entries are imported into `cache`
/// and the resumed run both reads from and publishes into it, so a
/// multi-tenant supervisor can resume a job without losing
/// cross-tenant synthesis reuse.
///
/// # Errors
///
/// As [`resume_dqn`].
pub fn resume_dqn_cached(
    env_config: &EnvConfig,
    config: &DqnConfig,
    mut snapshot: DqnSnapshot,
    cache: EvalCache,
    hooks: &TrainHooks,
) -> Result<OptimizationOutcome, RlMulError> {
    cache.import(std::mem::take(&mut snapshot.cache));
    let mut env = MulEnv::with_cache(env_config.clone(), cache)?;
    train_dqn_with(&mut env, config, hooks, Some(snapshot))
}

/// [`train_dqn`] with runtime hooks (telemetry, periodic snapshots,
/// cooperative stop) and an optional resume point.
///
/// # Errors
///
/// As [`train_dqn`], plus snapshot write/restore failures.
pub fn train_dqn_with(
    env: &mut MulEnv,
    config: &DqnConfig,
    hooks: &TrainHooks,
    resume: Option<DqnSnapshot>,
) -> Result<OptimizationOutcome, RlMulError> {
    let nn_before = NnStats::snapshot();
    let actions = env.action_space();
    let shape = env.tensor_shape();
    if hooks.telemetry.is_enabled() {
        env.set_telemetry(hooks.telemetry.clone());
    }
    if hooks.trace.is_enabled() {
        env.set_trace(hooks.trace.clone());
    }
    let mut opt = RmsProp::new(config.lr);
    let (mut rng, mut net, mut buffer, mut trajectory, mut state, start) = match resume {
        Some(mut snap) => {
            env.cache().import(std::mem::take(&mut snap.cache));
            env.restore(&snap.env)?;
            // The network is rebuilt from a throwaway RNG (shapes are
            // configuration-determined) and overwritten wholesale;
            // the training stream resumes from the snapshot state.
            let mut net =
                QNetwork::new(&config.trunk, actions, &mut StdRng::seed_from_u64(config.seed));
            restore_net(&mut net, &snap.net)?;
            opt.set_state(snap.opt);
            (
                StdRng::from_state(snap.rng),
                net,
                VecDeque::from(snap.replay),
                snap.trajectory,
                snap.state,
                snap.step,
            )
        }
        None => {
            let mut rng = StdRng::seed_from_u64(config.seed);
            let net = QNetwork::new(&config.trunk, actions, &mut rng);
            let state = env.encode_current()?.data().to_vec();
            let buffer = VecDeque::with_capacity(config.replay_capacity);
            (rng, net, buffer, Vec::with_capacity(config.steps), state, 0)
        }
    };
    if start > config.steps {
        return Err(RlMulError::InvalidConfig {
            what: format!("snapshot at step {start} exceeds the {}-step budget", config.steps),
        });
    }

    let obs = rlmul_obs::global();
    let _train_span = obs.span("train.dqn");
    let spans_before = obs.span_stats();
    let agent_steps = obs.labeled_counter(
        "rlmul_agent_steps_total",
        "Optimization steps taken by each agent.",
        &[("method", "dqn")],
    );
    let mut best_saved = f64::INFINITY;
    let mut completed = start;
    for t in start..config.steps {
        if hooks.stop_requested() {
            break;
        }
        let _step_span = obs.span("dqn.step");
        agent_steps.inc();
        let mask = env.action_mask();
        let epsilon = if config.steps <= 1 {
            config.epsilon_end
        } else {
            let frac = t as f32 / (config.steps - 1) as f32;
            config.epsilon_start + (config.epsilon_end - config.epsilon_start) * frac
        };
        let action = if t < config.warmup || rng.gen::<f32>() < epsilon {
            random_legal(&mask, &mut rng)
        } else {
            let x = Tensor::from_vec(&shape, state.clone());
            let q = net.forward(&x, false);
            masked_argmax(q.data(), &mask).expect("legal actions always exist")
        };
        let outcome = env.step(action)?;
        trajectory.push(outcome.cost);
        if hooks.telemetry.is_enabled() {
            let r0 = &outcome.evaluation.reports[0];
            hooks.telemetry.emit(
                Event::new("episode")
                    .with("method", "dqn")
                    .with("step", t as u64)
                    .with("reward", outcome.reward)
                    .with("cost", outcome.cost)
                    .with("area_um2", r0.area_um2)
                    .with("delay_ns", r0.delay_ns),
            );
        }
        let next_state = env.encode_current()?.data().to_vec();
        let next_mask = env.action_mask();
        if buffer.len() == config.replay_capacity {
            buffer.pop_front();
        }
        buffer.push_back(Transition {
            state: std::mem::replace(&mut state, next_state.clone()),
            action,
            reward: outcome.reward as f32,
            next_state,
            next_mask,
        });

        if buffer.len() >= config.batch_size {
            let batch: Vec<&Transition> =
                (0..config.batch_size).map(|_| &buffer[rng.gen_range(0..buffer.len())]).collect();
            update(&mut net, &mut opt, &batch, config, &shape, actions);
        }
        completed = t + 1;
        hooks.report_progress(completed);
        if hooks.checkpoint_due(completed, config.steps) {
            save_dqn_checkpoint(
                completed,
                &rng,
                &mut net,
                &opt,
                &buffer,
                &trajectory,
                &state,
                env,
                hooks,
                &mut best_saved,
                true,
            )?;
        }
    }

    // Verification sweep on normal completion only: an interrupted
    // run sweeps when its resumption finishes, so resume stays
    // bit-identical to an uninterrupted run.
    if completed == config.steps {
        env.verify_screened()?;
    }
    // Shutdown snapshot: rolled on normal completion and on
    // cooperative stop alike, so `resume` always has the exact state
    // the run ended in.
    if hooks.store.is_some() {
        save_dqn_checkpoint(
            completed,
            &rng,
            &mut net,
            &opt,
            &buffer,
            &trajectory,
            &state,
            env,
            hooks,
            &mut best_saved,
            false,
        )?;
    }
    if hooks.telemetry.is_enabled() {
        let s = env.stats();
        hooks.telemetry.emit(
            Event::new("cache")
                .with("hits", s.cache_hits as u64)
                .with("misses", s.cache_misses as u64),
        );
        let nn = NnStats::snapshot().since(nn_before);
        hooks.telemetry.emit(Event::new("nn").with("flops", nn.flops));
        emit_span_events(&hooks.telemetry, &obs.span_stats_since(&spans_before));
    }

    let (best, best_cost) = env.best();
    let stats = env.stats();
    Ok(OptimizationOutcome {
        best: best.clone(),
        best_cost,
        trajectory,
        pareto_points: env.pareto_points().to_vec(),
        states_visited: stats.distinct_states,
        synth_runs: stats.synth_runs,
        pipeline: PipelineStats {
            cache_hits: stats.cache_hits,
            cache_misses: stats.cache_misses,
            cache_entries: stats.distinct_states,
            sta: stats.sta,
            nn: NnStats::snapshot().since(nn_before),
            lint: stats.lint,
            synthesis_calls: stats.synthesis_calls,
            surrogate_screened: stats.surrogate_screened,
            surrogate_forced_evals: stats.surrogate_forced_evals,
        },
    })
}

/// Rolls `latest.ckpt` (and `best.ckpt` when the run improved) with
/// the full training state at a step boundary.
#[allow(clippy::too_many_arguments)]
fn save_dqn_checkpoint(
    step: usize,
    rng: &StdRng,
    net: &mut QNetwork,
    opt: &RmsProp,
    buffer: &VecDeque<Transition>,
    trajectory: &[f64],
    state: &[f32],
    env: &mut MulEnv,
    hooks: &TrainHooks,
    best_saved: &mut f64,
    periodic: bool,
) -> Result<(), RlMulError> {
    let Some(store) = &hooks.store else { return Ok(()) };
    let snap = DqnSnapshot {
        step,
        rng: rng.state(),
        net: snapshot_net(net),
        opt: opt.state().to_vec(),
        replay: buffer.iter().cloned().collect(),
        trajectory: trajectory.to_vec(),
        state: state.to_vec(),
        env: env.snapshot(),
        cache: env.cache().export_entries(),
    };
    store.save_latest(&snap)?;
    if periodic && hooks.keep_history {
        store.save_step(step, &snap)?;
    }
    let best_cost = env.best().1;
    if best_cost < *best_saved {
        store.save_best(&snap)?;
        *best_saved = best_cost;
    }
    hooks.telemetry.emit(
        Event::new("checkpoint")
            .with("step", step as u64)
            .with("path", store.latest_path().display().to_string()),
    );
    Ok(())
}

fn random_legal<R: Rng + ?Sized>(mask: &[bool], rng: &mut R) -> usize {
    let legal: Vec<usize> = mask.iter().enumerate().filter(|(_, &ok)| ok).map(|(i, _)| i).collect();
    legal[rng.gen_range(0..legal.len())]
}

/// Bootstrapped TD targets `r + γ·max_a' Q(s', a')` (paper Eq. 11),
/// evaluated with `train == false` so the pass caches nothing.
fn bootstrap_targets(
    net: &mut QNetwork,
    next: &Tensor,
    batch: &[&Transition],
    config: &DqnConfig,
    actions: usize,
) -> Vec<f32> {
    let q_next = net.forward(next, false);
    batch
        .iter()
        .enumerate()
        .map(|(i, t)| {
            let row = &q_next.data()[i * actions..(i + 1) * actions];
            let best = masked_argmax(row, &t.next_mask).map(|a| row[a]).unwrap_or(0.0);
            t.reward + config.gamma * best
        })
        .collect()
}

/// One gradient step on the TD objective of paper Eqs. (11)–(12).
///
/// One network plays both roles here: the *training* forward over the
/// current states and the *bootstrap* evaluation forward over the
/// next states. The evaluation pass deliberately runs between the
/// training forward and its backward, which is only sound because of
/// the [`Layer`] caching contract — `train == false` forwards cache
/// nothing, so [`bootstrap_targets`] cannot clobber the intermediates
/// (cached inputs, ReLU masks, batch-norm statistics) the backward
/// consumes. `update_gradient_matches_two_net_reference` pins this
/// against a frozen-target-network reference implementation.
fn update(
    net: &mut QNetwork,
    opt: &mut RmsProp,
    batch: &[&Transition],
    config: &DqnConfig,
    shape: &[usize; 4],
    actions: usize,
) {
    let b = batch.len();
    let bshape = [b, shape[1], shape[2], shape[3]];
    let stack = |pick: &dyn Fn(&Transition) -> &[f32]| -> Tensor {
        let mut data = Vec::with_capacity(b * shape[1] * shape[2] * shape[3]);
        for t in batch {
            data.extend_from_slice(pick(t));
        }
        Tensor::from_vec(&bshape, data)
    };
    // Phase 1: training forward (caches intermediates, updates
    // batch-norm running statistics).
    opt.zero_grad(net);
    let cur = stack(&|t| &t.state);
    let q = net.forward(&cur, true);
    // Phase 2: bootstrap evaluation — no gradient through the next
    // state, and per the caching contract no effect on phase 1 state.
    let next = stack(&|t| &t.next_state);
    let targets = bootstrap_targets(net, &next, batch, config, actions);
    // Phase 3: masked MSE on the chosen actions, backward, step.
    let mut grad = Tensor::zeros(q.shape());
    for (i, t) in batch.iter().enumerate() {
        let pred = q.data()[i * actions + t.action];
        grad.data_mut()[i * actions + t.action] = 2.0 * (pred - targets[i]) / b as f32;
    }
    net.backward(&grad);
    clip_grad_norm(net, config.grad_clip);
    opt.step(net);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::EnvConfig;
    use rlmul_ct::PpgKind;

    fn tiny_config() -> DqnConfig {
        DqnConfig {
            steps: 12,
            warmup: 4,
            batch_size: 4,
            trunk: TrunkConfig { in_channels: 2, channels: vec![4, 8], blocks_per_stage: 1 },
            ..Default::default()
        }
    }

    #[test]
    fn dqn_runs_and_tracks_best() {
        let mut env = MulEnv::new(EnvConfig::new(4, PpgKind::And)).unwrap();
        let out = train_dqn(&mut env, &tiny_config()).unwrap();
        assert_eq!(out.trajectory.len(), 12);
        assert!(out.best_cost <= out.trajectory[0] + 1e-9);
        out.best.check_legal().unwrap();
        assert!(out.synth_runs >= out.states_visited);
    }

    #[test]
    fn dqn_is_deterministic_given_seed() {
        let run = || {
            let mut env = MulEnv::new(EnvConfig::new(4, PpgKind::And)).unwrap();
            train_dqn(&mut env, &tiny_config()).unwrap().trajectory
        };
        assert_eq!(run(), run());
    }

    /// The single-net `update` interleaves an evaluation forward
    /// (bootstrap targets) between the training forward and its
    /// backward. This pins its gradient, bit for bit, against the
    /// unambiguous two-network formulation: a frozen target copy
    /// computes the bootstrap, so nothing can interfere with the
    /// training net's cached state.
    #[test]
    fn update_gradient_matches_two_net_reference() {
        let config = DqnConfig {
            trunk: TrunkConfig { in_channels: 2, channels: vec![4, 8], blocks_per_stage: 1 },
            ..Default::default()
        };
        let shape = [1usize, 2, 8, 8];
        let volume = shape[1] * shape[2] * shape[3];
        let actions = 6;
        let mut rng = StdRng::seed_from_u64(99);
        let transitions: Vec<Transition> = (0..4)
            .map(|_| Transition {
                state: (0..volume).map(|_| rng.gen_range(-1.0..1.0)).collect(),
                action: rng.gen_range(0..actions),
                reward: rng.gen_range(-1.0..1.0),
                next_state: (0..volume).map(|_| rng.gen_range(-1.0..1.0)).collect(),
                next_mask: (0..actions).map(|_| rng.gen::<f32>() < 0.7).collect(),
            })
            .map(|mut t| {
                if !t.next_mask.iter().any(|&m| m) {
                    t.next_mask[0] = true;
                }
                t
            })
            .collect();
        let batch: Vec<&Transition> = transitions.iter().collect();
        let grads_of = |net: &mut QNetwork| {
            let mut g = Vec::new();
            net.visit_params(&mut |p| g.extend_from_slice(p.grad.data()));
            g
        };

        // Single-net path (the production `update`).
        let mut net = QNetwork::new(&config.trunk, actions, &mut StdRng::seed_from_u64(7));
        let mut opt = RmsProp::new(config.lr);
        update(&mut net, &mut opt, &batch, &config, &shape, actions);

        // Two-net reference: a twin built from the same seed replays
        // the training forward (so its batch-norm running statistics
        // match), then serves as the frozen target network.
        let mut train_net = QNetwork::new(&config.trunk, actions, &mut StdRng::seed_from_u64(7));
        let mut target_net = QNetwork::new(&config.trunk, actions, &mut StdRng::seed_from_u64(7));
        let stack = |pick: &dyn Fn(&Transition) -> &[f32]| {
            let mut data = Vec::new();
            for t in &batch {
                data.extend_from_slice(pick(t));
            }
            Tensor::from_vec(&[batch.len(), shape[1], shape[2], shape[3]], data)
        };
        let cur = stack(&|t| &t.state);
        let next = stack(&|t| &t.next_state);
        target_net.forward(&cur, true); // sync running statistics
        let targets = bootstrap_targets(&mut target_net, &next, &batch, &config, actions);
        let q = train_net.forward(&cur, true);
        let mut grad = Tensor::zeros(q.shape());
        for (i, t) in batch.iter().enumerate() {
            let pred = q.data()[i * actions + t.action];
            grad.data_mut()[i * actions + t.action] =
                2.0 * (pred - targets[i]) / batch.len() as f32;
        }
        train_net.backward(&grad);
        clip_grad_norm(&mut train_net, config.grad_clip);

        assert_eq!(grads_of(&mut net), grads_of(&mut train_net));
    }

    #[test]
    fn qnetwork_output_width_matches_action_space() {
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = TrunkConfig { in_channels: 2, channels: vec![4], blocks_per_stage: 1 };
        let mut net = QNetwork::new(&cfg, 32, &mut rng);
        let x = Tensor::zeros(&[2, 2, 8, 8]);
        let y = net.forward(&x, false);
        assert_eq!(y.shape(), &[2, 32]);
    }
}
