//! Online learned surrogate evaluator (ROADMAP item 3, DOMAC-style).
//!
//! Synthesis dominates the cost of every search loop, and after the
//! incremental pipeline the remaining lever is doing *fewer* real
//! evaluations, not faster ones. This module trains a small
//! [`rlmul_nn`] MLP online — on every completed evaluation the
//! environment sees — to predict the per-constraint `(area, delay)`
//! a synthesis run would report for a state tensor, and uses it to
//! pre-screen candidate actions:
//!
//! * **Step agents (DQN / A2C).** Every [`crate::MulEnv::step`] with
//!   the surrogate enabled scores *all* legal successor states with
//!   one batched MLP forward. The chosen successor goes to real
//!   synthesis only when it ranks inside the predicted top-k (or a
//!   forced full evaluation is due); otherwise the environment
//!   answers with the surrogate's predicted evaluation and no
//!   synthesis happens at all.
//! * **SA.** The annealer proposes one random neighbor per step, so
//!   rank screening degenerates; proposals are gated by thresholds
//!   instead. A proposal is answered by the surrogate when its
//!   predicted cost is outside `sa_margin` of the best real cost
//!   seen so far (predicted-unpromising), or when the predicted
//!   uphill delta makes the Metropolis acceptance probability
//!   negligible at the current temperature
//!   (`exp(-Δ/T) < sa_accept_floor`, a rejection the walk would
//!   reach under the real cost too).
//!
//! An **honesty schedule** keeps the model grounded: after
//! `refresh_every` consecutive screened (prediction-served) answers,
//! the next evaluation is forced through real synthesis regardless of
//! its predicted rank. Every real evaluation doubles as a training
//! sample *and* a held-out probe: the model predicts first, the
//! absolute error updates per-constraint area/delay MAE trackers
//! (exported through `rlmul-obs` and `rlmul-telemetry`), and only
//! then is the sample trained on.
//!
//! Screened predictions never enter the [`crate::EvalCache`] and
//! never contribute Pareto points — the archive stays a record of
//! real synthesis results. All surrogate state (weights, Adam
//! moments, RNG, replay ring, normalization anchors, honesty
//! counters) snapshots into [`SurrogateSnapshot`] so resumed runs
//! stay bit-identical.

use crate::env::Evaluation;
use crate::reward::CostWeights;
use crate::RlMulError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rlmul_ct::PpgKind;
use rlmul_nn::Adam;
use rlmul_nn::{
    clip_grad_norm, restore_net, snapshot_net, Layer, Linear, NetSnapshot, Optimizer, Relu,
    Sequential, Tensor,
};
use rlmul_synth::SynthesisReport;
use std::collections::HashSet;

/// Configuration of the online surrogate evaluator. Disabled by
/// default: the off path is bit-identical to an environment without a
/// surrogate.
#[derive(Debug, Clone, PartialEq)]
pub struct SurrogateConfig {
    /// Master switch; `false` (the default) keeps every evaluation on
    /// the real synthesis path.
    pub enabled: bool,
    /// Candidates per step forwarded to real synthesis: the chosen
    /// successor is synthesized only when it ranks inside the best
    /// `topk` predicted costs among all legal successors.
    pub topk: usize,
    /// Honesty schedule: force a real synthesis after this many
    /// consecutive screened (prediction-served) evaluations.
    pub refresh_every: usize,
    /// Observations required before screening starts; until then
    /// every evaluation is real (and trains the model).
    pub min_samples: usize,
    /// Hidden width of the two-hidden-layer MLP.
    pub hidden: usize,
    /// Minibatch size per training step.
    pub batch: usize,
    /// Training steps per new observation.
    pub train_per_observe: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Replay ring capacity (observations kept for training).
    pub buffer_cap: usize,
    /// SA proposal gate, cost criterion: screen a proposal when its
    /// predicted cost exceeds `best_real_cost * (1 + sa_margin)` —
    /// predicted-unpromising states skip synthesis.
    pub sa_margin: f64,
    /// SA proposal gate, rejection-certainty criterion: also screen
    /// when the predicted acceptance probability at the annealer's
    /// current temperature falls below this floor —
    /// `exp(-Δ/T) < sa_accept_floor`, i.e. the predicted uphill delta
    /// makes rejection near-certain under real and predicted costs
    /// alike, so screening cannot steer the walk. Matters for cold
    /// annealing schedules where the margin criterion rarely fires.
    pub sa_accept_floor: f64,
    /// Pareto front guard slack: a state is screened only when every
    /// predicted per-constraint `(area, delay)` point is dominated by
    /// an existing front point after relaxing it by this fraction.
    /// Zero demands strict dominance (real-evaluates anything that
    /// might extend the front, at the price of screening less);
    /// larger values tolerate that much prediction noise near the
    /// front before spending a synthesis call.
    pub guard_slack: f64,
    /// End-of-run verification sweep: real-evaluate this many of the
    /// screened states whose predictions landed nearest the Pareto
    /// front, so a prediction error cannot permanently hide a
    /// front-extending design. Zero disables the sweep.
    pub verify_top: usize,
    /// RNG seed for weight init and minibatch sampling.
    pub seed: u64,
}

impl Default for SurrogateConfig {
    fn default() -> Self {
        SurrogateConfig {
            enabled: false,
            topk: 3,
            refresh_every: 8,
            min_samples: 12,
            hidden: 48,
            batch: 8,
            train_per_observe: 4,
            lr: 2e-3,
            buffer_cap: 512,
            sa_margin: 0.002,
            sa_accept_floor: 1e-3,
            guard_slack: 0.1,
            verify_top: 8,
            seed: 0x5eed,
        }
    }
}

/// Complete mutable state of the online surrogate at a step boundary.
/// Serialized inside [`crate::EnvSnapshot`] through
/// [`rlmul_ckpt::Record`], so every agent checkpoint carries it and
/// resume stays bit-identical with the surrogate enabled.
#[derive(Debug, Clone)]
pub struct SurrogateSnapshot {
    pub(crate) net: NetSnapshot,
    pub(crate) adam_t: i64,
    pub(crate) adam_m: Vec<Tensor>,
    pub(crate) adam_v: Vec<Tensor>,
    pub(crate) rng: [u64; 4],
    pub(crate) buf_x: Vec<Vec<f32>>,
    pub(crate) buf_y: Vec<Vec<f32>>,
    pub(crate) write_pos: usize,
    pub(crate) seen: Vec<u64>,
    pub(crate) norm: Vec<(f64, f64)>,
    pub(crate) observed: usize,
    pub(crate) since_real: usize,
    pub(crate) best_real_cost: f64,
    pub(crate) mae_sums: Vec<(f64, f64)>,
    pub(crate) mae_count: u64,
}

/// Pre-registered observability handles (see `CacheObs` for the
/// pattern): counters mirror per-environment counters into the
/// process-wide scrape surface, gauges publish the rolling MAE so
/// surrogate drift is visible on the Prometheus endpoint.
#[derive(Debug)]
struct SurrogateObs {
    observations: rlmul_obs::Counter,
    screened: rlmul_obs::Counter,
    forced: rlmul_obs::Counter,
    area_mae: rlmul_obs::Gauge,
    delay_mae: rlmul_obs::Gauge,
}

impl SurrogateObs {
    fn new() -> Self {
        let obs = rlmul_obs::global();
        SurrogateObs {
            observations: obs.counter(
                "rlmul_surrogate_observations_total",
                "Real evaluations ingested as surrogate training samples.",
            ),
            screened: obs.counter(
                "rlmul_surrogate_screened_total",
                "Evaluations answered by the surrogate instead of synthesis.",
            ),
            forced: obs.counter(
                "rlmul_surrogate_forced_evals_total",
                "Real evaluations forced by the surrogate honesty schedule.",
            ),
            area_mae: obs.gauge(
                "rlmul_surrogate_area_mae",
                "Rolling mean absolute error of surrogate area predictions (µm², averaged over constraints).",
            ),
            delay_mae: obs.gauge(
                "rlmul_surrogate_delay_mae",
                "Rolling mean absolute error of surrogate delay predictions (ns, averaged over constraints).",
            ),
        }
    }
}

/// FNV-1a fingerprint of a cache identity, used for the surrogate's
/// seen-set. Training keys on *which states this environment has
/// ingested* (not on who synthesized them), so parallel workers
/// sharing a cache stay deterministic regardless of which one won the
/// in-flight race.
pub(crate) fn state_fingerprint(counts: &[(u32, u32)], kind: PpgKind, context: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    mix(counts.len() as u64);
    for &(a, b) in counts {
        mix((u64::from(a) << 32) | u64::from(b));
    }
    mix(kind as u64);
    mix(context);
    h
}

/// The online surrogate: a `volume → hidden → hidden → 2·targets`
/// MLP predicting normalized `(area, delay)` per delay constraint,
/// trained incrementally from a replay ring of completed evaluations.
pub(crate) struct Surrogate {
    cfg: SurrogateConfig,
    n_targets: usize,
    input_dim: usize,
    delay_targets: Vec<f64>,
    weights: CostWeights,
    net: Sequential,
    opt: Adam,
    rng: StdRng,
    buf_x: Vec<Vec<f32>>,
    buf_y: Vec<Vec<f32>>,
    write_pos: usize,
    seen: HashSet<u64>,
    /// Per-target `(area, delay)` normalization anchors, set from the
    /// first observation; empty until then.
    norm: Vec<(f64, f64)>,
    observed: usize,
    since_real: usize,
    best_real_cost: f64,
    mae_sums: Vec<(f64, f64)>,
    mae_count: u64,
    obs: SurrogateObs,
    /// Scratch for batched candidate forwards.
    flat: Vec<f32>,
}

impl std::fmt::Debug for Surrogate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Surrogate({} obs, {} targets, warmed: {})",
            self.observed,
            self.n_targets,
            self.is_warmed()
        )
    }
}

fn build_net(
    cfg: &SurrogateConfig,
    input_dim: usize,
    out_dim: usize,
    rng: &mut StdRng,
) -> Sequential {
    let mut net = Sequential::new();
    net.push(Box::new(Linear::new(input_dim, cfg.hidden, rng)));
    net.push(Box::new(Relu::new()));
    net.push(Box::new(Linear::new(cfg.hidden, cfg.hidden, rng)));
    net.push(Box::new(Relu::new()));
    net.push(Box::new(Linear::new(cfg.hidden, out_dim, rng)));
    net
}

impl Surrogate {
    pub(crate) fn new(
        cfg: SurrogateConfig,
        input_dim: usize,
        delay_targets: &[f64],
        weights: CostWeights,
    ) -> Self {
        let n_targets = delay_targets.len();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let net = build_net(&cfg, input_dim, 2 * n_targets, &mut rng);
        let opt = Adam::new(cfg.lr);
        Surrogate {
            n_targets,
            input_dim,
            delay_targets: delay_targets.to_vec(),
            weights,
            net,
            opt,
            rng,
            buf_x: Vec::new(),
            buf_y: Vec::new(),
            write_pos: 0,
            seen: HashSet::new(),
            norm: Vec::new(),
            observed: 0,
            since_real: 0,
            best_real_cost: f64::INFINITY,
            mae_sums: vec![(0.0, 0.0); n_targets],
            mae_count: 0,
            obs: SurrogateObs::new(),
            flat: Vec::new(),
            cfg,
        }
    }

    pub(crate) fn config(&self) -> &SurrogateConfig {
        &self.cfg
    }

    /// Whether the model has seen enough real evaluations to screen.
    pub(crate) fn is_warmed(&self) -> bool {
        !self.norm.is_empty() && self.observed >= self.cfg.min_samples
    }

    /// Whether the honesty schedule demands the next evaluation be
    /// real regardless of its predicted rank.
    pub(crate) fn forced_due(&self) -> bool {
        self.since_real >= self.cfg.refresh_every
    }

    /// A real evaluation happened; reset the honesty counter.
    pub(crate) fn note_real(&mut self) {
        self.since_real = 0;
    }

    /// A screened (prediction-served) evaluation happened.
    pub(crate) fn note_screened(&mut self) {
        self.since_real += 1;
        self.obs.screened.inc();
    }

    /// Record a forced full evaluation on the process-wide metrics.
    pub(crate) fn note_forced(&mut self) {
        self.obs.forced.inc();
    }

    /// Whether `fingerprint` would be a new training sample (cheap
    /// pre-check so callers skip encoding already-seen states).
    pub(crate) fn wants(&self, fingerprint: u64) -> bool {
        !self.seen.contains(&fingerprint)
    }

    /// Best real (synthesized) cost ingested so far; the SA gate's
    /// margin-criterion reference point.
    pub(crate) fn best_real_cost(&self) -> f64 {
        self.best_real_cost
    }

    /// Rolling per-constraint `(area MAE µm², delay MAE ns)`; empty
    /// until the first post-warmup observation.
    pub(crate) fn mae(&self) -> Vec<(f64, f64)> {
        if self.mae_count == 0 {
            return Vec::new();
        }
        let n = self.mae_count as f64;
        self.mae_sums.iter().map(|&(a, d)| (a / n, d / n)).collect()
    }

    pub(crate) fn observed(&self) -> usize {
        self.observed
    }

    /// Ingests one completed real evaluation: probes the model for
    /// its held-out prediction error (post-warmup), pushes the sample
    /// into the replay ring, and runs `train_per_observe` minibatch
    /// steps. Returns `true` when an error sample was recorded (the
    /// caller emits telemetry on that edge).
    pub(crate) fn observe(&mut self, fingerprint: u64, x: &[f32], eval: &Evaluation) -> bool {
        debug_assert_eq!(x.len(), self.input_dim);
        if eval.reports.len() != self.n_targets || !self.seen.insert(fingerprint) {
            return false;
        }
        if eval.cost < self.best_real_cost {
            self.best_real_cost = eval.cost;
        }
        // Held-out probe before training on the sample.
        let mut recorded = false;
        if self.is_warmed() {
            let pred = self.predict_reports_raw(x);
            for (i, r) in eval.reports.iter().enumerate() {
                self.mae_sums[i].0 += (pred[i].0 - r.area_um2).abs();
                self.mae_sums[i].1 += (pred[i].1 - r.delay_ns).abs();
            }
            self.mae_count += 1;
            let mae = self.mae();
            let n = mae.len() as f64;
            self.obs.area_mae.set(mae.iter().map(|m| m.0).sum::<f64>() / n);
            self.obs.delay_mae.set(mae.iter().map(|m| m.1).sum::<f64>() / n);
            recorded = true;
        }
        if self.norm.is_empty() {
            self.norm = eval
                .reports
                .iter()
                .map(|r| (r.area_um2.abs().max(1e-9), r.delay_ns.abs().max(1e-9)))
                .collect();
        }
        let y: Vec<f32> = eval
            .reports
            .iter()
            .zip(&self.norm)
            .flat_map(|(r, &(an, dn))| [(r.area_um2 / an) as f32, (r.delay_ns / dn) as f32])
            .collect();
        if self.buf_x.len() < self.cfg.buffer_cap {
            self.buf_x.push(x.to_vec());
            self.buf_y.push(y);
        } else {
            self.buf_x[self.write_pos] = x.to_vec();
            self.buf_y[self.write_pos] = y;
            self.write_pos = (self.write_pos + 1) % self.cfg.buffer_cap;
        }
        self.observed += 1;
        self.obs.observations.inc();
        for _ in 0..self.cfg.train_per_observe {
            self.train_step();
        }
        recorded
    }

    /// One Adam step on a uniformly sampled minibatch (MSE on the
    /// normalized per-constraint targets).
    fn train_step(&mut self) {
        let n = self.buf_x.len();
        if n == 0 {
            return;
        }
        let b = self.cfg.batch.min(n);
        let out_dim = 2 * self.n_targets;
        let mut xs = Vec::with_capacity(b * self.input_dim);
        let mut ys = Vec::with_capacity(b * out_dim);
        for _ in 0..b {
            let i = self.rng.gen_range(0..n);
            xs.extend_from_slice(&self.buf_x[i]);
            ys.extend_from_slice(&self.buf_y[i]);
        }
        let x = Tensor::from_vec(&[b, self.input_dim], xs);
        self.opt.zero_grad(&mut self.net);
        let pred = self.net.forward(&x, true);
        let mut grad = Tensor::zeros(pred.shape());
        let scale = 2.0 / (b * out_dim) as f32;
        for ((g, &p), &y) in grad.data_mut().iter_mut().zip(pred.data()).zip(&ys) {
            *g = scale * (p - y);
        }
        self.net.backward(&grad);
        clip_grad_norm(&mut self.net, 5.0);
        self.opt.step(&mut self.net);
    }

    /// Denormalized `(area µm², delay ns)` per constraint for one
    /// encoded state.
    fn predict_reports_raw(&mut self, x: &[f32]) -> Vec<(f64, f64)> {
        let t = Tensor::from_vec(&[1, self.input_dim], x.to_vec());
        let out = self.net.forward(&t, false);
        out.data()
            .chunks_exact(2)
            .zip(&self.norm)
            .map(|(c, &(an, dn))| (f64::from(c[0]) * an, f64::from(c[1]) * dn))
            .collect()
    }

    /// Predicted scalar cost (the reward's weighted objective, power
    /// term excluded — the surrogate predicts area and delay only)
    /// for each of `n` encoded states packed row-major in `flat`.
    pub(crate) fn predict_costs(&mut self, flat: &[f32], n: usize) -> Vec<f64> {
        debug_assert_eq!(flat.len(), n * self.input_dim);
        let t = Tensor::from_vec(&[n, self.input_dim], flat.to_vec());
        let out = self.net.forward(&t, false);
        let od = out.data();
        let out_dim = 2 * self.n_targets;
        (0..n)
            .map(|i| {
                let row = &od[i * out_dim..(i + 1) * out_dim];
                let mut area = 0.0;
                let mut delay = 0.0;
                for (c, &(an, dn)) in row.chunks_exact(2).zip(&self.norm) {
                    area += f64::from(c[0]) * an;
                    delay += f64::from(c[1]) * dn;
                }
                self.weights.area * area / 100.0 + self.weights.delay * delay
            })
            .collect()
    }

    /// Fabricates the surrogate's answer for a screened state: one
    /// predicted report per delay constraint (power, sizing and STA
    /// fields zeroed — they are synthesis by-products the predictor
    /// does not model) plus the weighted cost.
    pub(crate) fn predict_evaluation(&mut self, x: &[f32]) -> Evaluation {
        let per_target = self.predict_reports_raw(x);
        let reports: Vec<SynthesisReport> = per_target
            .iter()
            .zip(self.delay_targets.clone())
            .map(|(&(area, delay), target)| SynthesisReport {
                area_um2: area,
                delay_ns: delay,
                power_mw: 0.0,
                target_delay_ns: Some(target),
                met_target: delay <= target,
                drive_histogram: [0, 0, 0],
                sizing_moves: 0,
                num_cells: 0,
                sta: Default::default(),
            })
            .collect();
        let cost = self.weights.cost(&reports);
        Evaluation { reports, cost }
    }

    /// Caller-owned scratch for packing candidate encodings (kept
    /// here so the environment reuses one allocation per step).
    pub(crate) fn take_flat(&mut self) -> Vec<f32> {
        std::mem::take(&mut self.flat)
    }

    pub(crate) fn put_flat(&mut self, flat: Vec<f32>) {
        self.flat = flat;
    }

    /// Captures all mutable state for checkpointing.
    pub(crate) fn snapshot(&mut self) -> SurrogateSnapshot {
        let (adam_t, adam_m, adam_v) = self.opt.state();
        let mut seen: Vec<u64> = self.seen.iter().copied().collect();
        seen.sort_unstable();
        SurrogateSnapshot {
            net: snapshot_net(&mut self.net),
            adam_t,
            adam_m: adam_m.to_vec(),
            adam_v: adam_v.to_vec(),
            rng: self.rng.state(),
            buf_x: self.buf_x.clone(),
            buf_y: self.buf_y.clone(),
            write_pos: self.write_pos,
            seen,
            norm: self.norm.clone(),
            observed: self.observed,
            since_real: self.since_real,
            best_real_cost: self.best_real_cost,
            mae_sums: self.mae_sums.clone(),
            mae_count: self.mae_count,
        }
    }

    /// Restores state captured by [`Surrogate::snapshot`] into a
    /// freshly built, same-configuration surrogate.
    pub(crate) fn restore(&mut self, snap: &SurrogateSnapshot) -> Result<(), RlMulError> {
        restore_net(&mut self.net, &snap.net).map_err(|e| RlMulError::InvalidConfig {
            what: format!("surrogate snapshot does not fit the configured model: {e}"),
        })?;
        self.opt.set_state(snap.adam_t, snap.adam_m.clone(), snap.adam_v.clone());
        self.rng = StdRng::from_state(snap.rng);
        self.buf_x = snap.buf_x.clone();
        self.buf_y = snap.buf_y.clone();
        self.write_pos = snap.write_pos;
        self.seen = snap.seen.iter().copied().collect();
        self.norm = snap.norm.clone();
        self.observed = snap.observed;
        self.since_real = snap.since_real;
        self.best_real_cost = snap.best_real_cost;
        self.mae_sums = snap.mae_sums.clone();
        self.mae_count = snap.mae_count;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlmul_synth::SynthesisReport;

    fn report(area: f64, delay: f64, target: f64) -> SynthesisReport {
        SynthesisReport {
            area_um2: area,
            delay_ns: delay,
            power_mw: 0.0,
            target_delay_ns: Some(target),
            met_target: delay <= target,
            drive_histogram: [0, 0, 0],
            sizing_moves: 0,
            num_cells: 0,
            sta: Default::default(),
        }
    }

    fn eval_for(scale: f64) -> Evaluation {
        let reports =
            vec![report(400.0 * scale, 1.0 * scale, 1.0), report(420.0 * scale, 0.9 * scale, 1.2)];
        let cost = CostWeights::TRADE_OFF.cost(&reports);
        Evaluation { reports, cost }
    }

    fn tiny() -> Surrogate {
        let cfg = SurrogateConfig {
            enabled: true,
            min_samples: 4,
            hidden: 8,
            batch: 4,
            ..Default::default()
        };
        Surrogate::new(cfg, 6, &[1.0, 1.2], CostWeights::TRADE_OFF)
    }

    fn x_for(i: usize) -> Vec<f32> {
        (0..6).map(|j| ((i * 7 + j) % 5) as f32 * 0.25).collect()
    }

    #[test]
    fn warms_up_after_min_samples_and_tracks_mae() {
        let mut s = tiny();
        assert!(!s.is_warmed());
        for i in 0..4 {
            let recorded = s.observe(i as u64, &x_for(i), &eval_for(1.0 + i as f64 * 0.01));
            assert!(!recorded, "no MAE probe before warmup");
        }
        assert!(s.is_warmed());
        assert!(s.observe(99, &x_for(9), &eval_for(1.02)));
        assert_eq!(s.mae().len(), 2);
        assert!(s.mae().iter().all(|&(a, d)| a.is_finite() && d.is_finite()));
    }

    #[test]
    fn duplicate_fingerprints_are_ignored() {
        let mut s = tiny();
        assert!(s.wants(5));
        s.observe(5, &x_for(0), &eval_for(1.0));
        assert!(!s.wants(5));
        let before = s.observed();
        s.observe(5, &x_for(1), &eval_for(2.0));
        assert_eq!(s.observed(), before);
    }

    #[test]
    fn honesty_schedule_forces_periodic_real_evals() {
        let mut s = tiny();
        assert!(!s.forced_due());
        for _ in 0..s.config().refresh_every {
            s.note_screened();
        }
        assert!(s.forced_due());
        s.note_real();
        assert!(!s.forced_due());
    }

    #[test]
    fn predictions_converge_on_a_constant_target() {
        let mut s = tiny();
        // One repeated sample: the MLP must regress onto it quickly.
        for i in 0..200u64 {
            s.observe(i, &x_for(3), &eval_for(1.0));
        }
        let costs = s.predict_costs(&x_for(3), 1);
        let truth = eval_for(1.0).cost;
        assert!((costs[0] - truth).abs() / truth < 0.2, "predicted {} vs real {truth}", costs[0]);
    }

    #[test]
    fn snapshot_round_trips_bit_identically() {
        let mut s = tiny();
        for i in 0..6u64 {
            s.observe(i, &x_for(i as usize), &eval_for(1.0 + i as f64 * 0.02));
        }
        for _ in 0..3 {
            s.note_screened();
        }
        let snap = s.snapshot();
        let mut t = tiny();
        t.restore(&snap).unwrap();
        // Identical predictions and identical forward state.
        let a = s.predict_costs(&x_for(2), 1);
        let b = t.predict_costs(&x_for(2), 1);
        assert_eq!(a[0].to_bits(), b[0].to_bits());
        assert_eq!(t.observed(), s.observed());
        assert_eq!(t.forced_due(), s.forced_due());
        assert_eq!(t.best_real_cost().to_bits(), s.best_real_cost().to_bits());
        // Identical continued training streams (RNG + buffers match).
        s.observe(100, &x_for(9), &eval_for(1.1));
        t.observe(100, &x_for(9), &eval_for(1.1));
        let a = s.predict_costs(&x_for(4), 1);
        let b = t.predict_costs(&x_for(4), 1);
        assert_eq!(a[0].to_bits(), b[0].to_bits());
    }

    #[test]
    fn predicted_evaluation_has_one_report_per_constraint() {
        let mut s = tiny();
        for i in 0..5u64 {
            s.observe(i, &x_for(i as usize), &eval_for(1.0));
        }
        let eval = s.predict_evaluation(&x_for(1));
        assert_eq!(eval.reports.len(), 2);
        assert_eq!(eval.reports[0].target_delay_ns, Some(1.0));
        assert_eq!(eval.reports[0].sizing_moves, 0, "synthesis by-products stay zeroed");
        assert!(eval.cost.is_finite());
    }
}
