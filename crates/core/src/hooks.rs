//! Cross-cutting runtime hooks shared by every training entry point:
//! telemetry, periodic checkpointing and cooperative cancellation.
//!
//! The agents ([`crate::train_dqn_with`], [`crate::train_a2c_with`])
//! and the SA driver ([`crate::run_sa_with`]) all accept a
//! [`TrainHooks`]; the default is fully inert, so library callers
//! that don't care pay a branch per step and nothing else.

use rlmul_ckpt::SnapshotStore;
use rlmul_obs::TraceCtx;
use rlmul_telemetry::{Event, TelemetrySink};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// Runtime services threaded through a training run.
#[derive(Debug, Clone, Default)]
pub struct TrainHooks {
    /// JSONL telemetry sink; [`TelemetrySink::disabled`] by default.
    pub telemetry: TelemetrySink,
    /// Snapshot store for periodic and final checkpoints; `None`
    /// disables checkpointing entirely.
    pub store: Option<SnapshotStore>,
    /// Roll `latest.ckpt` every this many completed steps (0 = only
    /// on shutdown). Ignored without a store.
    pub checkpoint_every: usize,
    /// Cooperative stop flag, typically set from a SIGINT handler.
    /// The run finishes its current step, writes a final snapshot
    /// (when a store is configured) and returns normally.
    pub stop: Option<Arc<AtomicBool>>,
    /// Keep a step-tagged copy (`step-NNNNNNNN.ckpt`) of every
    /// *periodic* checkpoint in addition to rolling `latest.ckpt`, so
    /// mid-run states survive later checkpoints. Off by default;
    /// shutdown snapshots only roll `latest`.
    pub keep_history: bool,
    /// Live step counter published by the drivers after every
    /// completed environment step, so a supervisor (e.g. the `rlmul
    /// serve` job server) can report progress for a run it does not
    /// own without touching the training thread. `None` disables the
    /// store entirely.
    pub progress: Option<Arc<AtomicUsize>>,
    /// Per-job trace context; [`TraceCtx::disabled`] by default. The
    /// drivers hand it to the environment (cache / surrogate /
    /// synthesis emit sites) and emit one `step` event per completed
    /// step from [`TrainHooks::report_progress`].
    pub trace: TraceCtx,
}

impl TrainHooks {
    /// Hooks carrying only a telemetry sink.
    pub fn with_telemetry(sink: TelemetrySink) -> Self {
        TrainHooks { telemetry: sink, ..Default::default() }
    }

    /// Whether the stop flag has been raised.
    pub fn stop_requested(&self) -> bool {
        self.stop.as_ref().is_some_and(|f| f.load(Ordering::Relaxed))
    }

    /// Publishes `steps_done` to the progress counter (no-op without
    /// one) and appends one `step` trace event. Called by every driver
    /// after each completed step.
    pub fn report_progress(&self, steps_done: usize) {
        if let Some(p) = &self.progress {
            p.store(steps_done, Ordering::Relaxed);
        }
        if self.trace.is_enabled() {
            self.trace.emit("step", &format!("steps_done={steps_done}"));
        }
    }

    /// Whether a periodic checkpoint is due after `steps_done`
    /// completed steps (never fires on the final step — the shutdown
    /// snapshot covers it).
    pub(crate) fn checkpoint_due(&self, steps_done: usize, total_steps: usize) -> bool {
        self.store.is_some()
            && self.checkpoint_every > 0
            && steps_done.is_multiple_of(self.checkpoint_every)
            && steps_done < total_steps
    }
}

/// Emits one `span` telemetry event per accumulated span path (a
/// [`rlmul_obs::Registry::span_stats_since`] delta), so `rlmul report
/// --phase` can rebuild the run's time breakdown offline from the
/// JSONL log alone.
pub fn emit_span_events(sink: &TelemetrySink, spans: &[rlmul_obs::SpanStat]) {
    if !sink.is_enabled() {
        return;
    }
    for s in spans {
        // check: allow(trace-ctx) process-wide span aggregates, no per-job context
        sink.emit(
            // check: allow(trace-ctx) as above
            Event::new("span")
                .with("path", s.path.clone())
                .with("calls", s.calls)
                .with("incl_secs", s.incl_ns as f64 / 1e9)
                .with("excl_secs", s.excl_ns as f64 / 1e9),
        );
    }
}

/// Mirrors a job's accumulated trace events into JSONL telemetry (one
/// `trace` record per [`rlmul_obs::TraceEvent`], via
/// [`Event::trace`]), so offline `rlmul report` runs over a job's log
/// see the same causal timeline the serve API exposes live.
pub fn emit_trace_events(sink: &TelemetrySink, trace: &TraceCtx) {
    if !sink.is_enabled() || !trace.is_enabled() {
        return;
    }
    let id = trace.trace_id().unwrap_or_default().to_string();
    for e in trace.snapshot() {
        sink.emit(Event::trace(&id, e.seq, e.micros, &e.kind, &e.detail));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_hooks_are_inert() {
        let hooks = TrainHooks::default();
        assert!(!hooks.stop_requested());
        assert!(!hooks.telemetry.is_enabled());
        assert!(!hooks.trace.is_enabled());
        assert!(!hooks.checkpoint_due(5, 10));
        hooks.report_progress(3); // must not panic without a counter
    }

    #[test]
    fn progress_reports_land_in_the_trace() {
        let trace = TraceCtx::new("tr-test");
        let hooks = TrainHooks { trace: trace.clone(), ..Default::default() };
        hooks.report_progress(1);
        hooks.report_progress(2);
        let events = trace.snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, "step");
        assert_eq!(events[1].detail, "steps_done=2");
    }

    #[test]
    fn stop_flag_is_observed() {
        let flag = Arc::new(AtomicBool::new(false));
        let hooks = TrainHooks { stop: Some(flag.clone()), ..Default::default() };
        assert!(!hooks.stop_requested());
        flag.store(true, Ordering::Relaxed);
        assert!(hooks.stop_requested());
    }

    #[test]
    fn checkpoint_cadence_skips_the_final_step() {
        let store = SnapshotStore::new(std::env::temp_dir().join("rlmul-hooks-test"), "t");
        let hooks = TrainHooks { store: Some(store), checkpoint_every: 4, ..Default::default() };
        assert!(hooks.checkpoint_due(4, 10));
        assert!(!hooks.checkpoint_due(5, 10));
        assert!(!hooks.checkpoint_due(8, 8), "final step is covered by the shutdown snapshot");
    }
}
