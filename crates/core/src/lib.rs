//! RL-MUL: multiplier design optimization with deep reinforcement
//! learning — the paper's core framework.
//!
//! The optimization loop (paper Fig. 3) couples:
//!
//! * a state space of legal compressor trees ([`rlmul_ct`]), encoded
//!   as the tensor representation of Algorithm 1;
//! * a masked 8N-action modification space with deterministic
//!   legalization (Algorithm 2);
//! * a **Pareto-driven reward**: every state is synthesized under
//!   several delay constraints by the [`rlmul_synth`] engine and the
//!   reward is the decrease of the weighted area/delay cost
//!   (Eqs. 9–10, reduced per Section IV-B);
//! * two agents — native RL-MUL, a DQN with replay buffer and ε-greedy
//!   masked action selection (Algorithm 3, [`train_dqn`]); and
//!   RL-MUL-E, a synchronous parallel A2C with a shared residual trunk
//!   and k-step returns (Algorithm 4, [`train_a2c`]);
//! * the simulated-annealing baseline on the identical cost
//!   ([`run_sa`]).
//!
//! Long runs are crash-safe: the `*_with` entry points
//! ([`train_dqn_with`], [`train_a2c_with`], [`run_sa_with`]) accept
//! [`TrainHooks`] carrying a JSONL telemetry sink, a rolling
//! [`rlmul_ckpt::SnapshotStore`] and a cooperative stop flag, and the
//! matching `resume_*` functions continue a snapshotted run
//! **bit-identically** — same RNG streams, same optimizer moments,
//! same batch-norm statistics, and every previously synthesized state
//! served from the re-imported evaluation cache.
//!
//! # Example
//!
//! ```no_run
//! use rlmul_core::{train_dqn, DqnConfig, EnvConfig, MulEnv};
//! use rlmul_ct::PpgKind;
//!
//! let mut env = MulEnv::new(EnvConfig::new(8, PpgKind::And))?;
//! let outcome = train_dqn(&mut env, &DqnConfig::default())?;
//! println!("best cost {:.3} after {} synthesis runs",
//!          outcome.best_cost, outcome.synth_runs);
//! # Ok::<(), rlmul_core::RlMulError>(())
//! ```

#![forbid(unsafe_code)]

mod a2c;
mod cache;
mod ckpt;
mod dqn;
mod env;
mod error;
mod hooks;
mod outcome;
mod reward;
mod sa_driver;
mod surrogate;

pub use a2c::{
    resume_a2c, train_a2c, train_a2c_cached, train_a2c_with, A2cConfig, A2cSnapshot, PolicyValueNet,
};
pub use cache::{
    context_fingerprint, AsCacheKey, CacheKey, CacheKeyRef, CacheStats, EvalCache, EvalTicket,
    Lookup,
};
pub use dqn::{
    resume_dqn, resume_dqn_cached, train_dqn, train_dqn_with, DqnConfig, DqnSnapshot, QNetwork,
};
pub use env::{
    EnvConfig, EnvSnapshot, EnvStats, Evaluation, InitialStructure, MulEnv, PipelineMode,
    StagePruning, StepOutcome,
};
pub use error::RlMulError;
pub use hooks::{emit_span_events, emit_trace_events, TrainHooks};
pub use outcome::{LintStats, NnStats, OptimizationOutcome, PipelineStats};
pub use reward::CostWeights;
pub use sa_driver::{resume_sa, run_sa, run_sa_cached, run_sa_with, SaSnapshot};
pub use surrogate::{SurrogateConfig, SurrogateSnapshot};
