//! RL-MUL: multiplier design optimization with deep reinforcement
//! learning — the paper's core framework.
//!
//! The optimization loop (paper Fig. 3) couples:
//!
//! * a state space of legal compressor trees ([`rlmul_ct`]), encoded
//!   as the tensor representation of Algorithm 1;
//! * a masked 8N-action modification space with deterministic
//!   legalization (Algorithm 2);
//! * a **Pareto-driven reward**: every state is synthesized under
//!   several delay constraints by the [`rlmul_synth`] engine and the
//!   reward is the decrease of the weighted area/delay cost
//!   (Eqs. 9–10, reduced per Section IV-B);
//! * two agents — native RL-MUL, a DQN with replay buffer and ε-greedy
//!   masked action selection (Algorithm 3, [`train_dqn`]); and
//!   RL-MUL-E, a synchronous parallel A2C with a shared residual trunk
//!   and k-step returns (Algorithm 4, [`train_a2c`]);
//! * the simulated-annealing baseline on the identical cost
//!   ([`run_sa`]).
//!
//! # Example
//!
//! ```no_run
//! use rlmul_core::{train_dqn, DqnConfig, EnvConfig, MulEnv};
//! use rlmul_ct::PpgKind;
//!
//! let mut env = MulEnv::new(EnvConfig::new(8, PpgKind::And))?;
//! let outcome = train_dqn(&mut env, &DqnConfig::default())?;
//! println!("best cost {:.3} after {} synthesis runs",
//!          outcome.best_cost, outcome.synth_runs);
//! # Ok::<(), rlmul_core::RlMulError>(())
//! ```

mod a2c;
mod cache;
mod dqn;
mod env;
mod error;
mod outcome;
mod reward;
mod sa_driver;

pub use a2c::{train_a2c, train_a2c_cached, A2cConfig, PolicyValueNet};
pub use cache::{context_fingerprint, CacheKey, CacheStats, EvalCache, EvalTicket, Lookup};
pub use dqn::{train_dqn, DqnConfig, QNetwork};
pub use env::{
    EnvConfig, EnvStats, Evaluation, InitialStructure, MulEnv, StagePruning, StepOutcome,
};
pub use error::RlMulError;
pub use outcome::{LintStats, NnStats, OptimizationOutcome, PipelineStats};
pub use reward::CostWeights;
pub use sa_driver::{run_sa, run_sa_cached};
