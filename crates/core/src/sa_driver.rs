//! Simulated-annealing baseline driven by the same synthesis-backed
//! cost as the RL agents, so Fig. 12-style comparisons isolate the
//! search strategy.

use crate::env::{EnvConfig, MulEnv};
use crate::outcome::OptimizationOutcome;
use crate::RlMulError;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rlmul_baselines::{simulated_annealing, SaConfig};

/// Runs the SA baseline with the environment's Pareto-driven cost.
///
/// # Errors
///
/// Propagates environment construction and synthesis errors.
pub fn run_sa(
    env_config: &EnvConfig,
    sa_config: &SaConfig,
    seed: u64,
) -> Result<OptimizationOutcome, RlMulError> {
    let mut env = MulEnv::new(env_config.clone())?;
    let mut rng = StdRng::seed_from_u64(seed);
    let initial = env.current().clone();
    let mut eval_error: Option<RlMulError> = None;
    let outcome = {
        let env_ref = &mut env;
        let err_ref = &mut eval_error;
        simulated_annealing(&initial, sa_config, &mut rng, |tree| {
            match env_ref.evaluate(tree) {
                Ok(e) => e.cost,
                Err(e) => {
                    // Surface the first error after the run; penalize the
                    // state so the annealer walks away from it.
                    if err_ref.is_none() {
                        *err_ref = Some(e);
                    }
                    f64::INFINITY
                }
            }
        })
    };
    if let Some(e) = eval_error {
        return Err(e);
    }
    let (_, states_visited, synth_runs) = env.stats();
    Ok(OptimizationOutcome {
        best: outcome.best,
        best_cost: outcome.best_cost,
        trajectory: outcome.trajectory,
        pareto_points: env.pareto_points().to_vec(),
        states_visited,
        synth_runs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlmul_ct::PpgKind;

    #[test]
    fn sa_driver_produces_trajectory_and_legal_best() {
        let env_cfg = EnvConfig::new(4, PpgKind::And);
        let sa_cfg = SaConfig { steps: 20, ..Default::default() };
        let out = run_sa(&env_cfg, &sa_cfg, 42).unwrap();
        assert_eq!(out.trajectory.len(), 20);
        out.best.check_legal().unwrap();
        assert!(out.states_visited >= 1);
    }
}
