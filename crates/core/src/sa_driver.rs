//! Simulated-annealing baseline driven by the same synthesis-backed
//! cost as the RL agents, so Fig. 12-style comparisons isolate the
//! search strategy.

use crate::cache::EvalCache;
use crate::env::{EnvConfig, MulEnv};
use crate::outcome::{OptimizationOutcome, PipelineStats};
use crate::RlMulError;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rlmul_baselines::{simulated_annealing, SaConfig};

/// Runs the SA baseline with the environment's Pareto-driven cost.
///
/// # Errors
///
/// Propagates environment construction and synthesis errors.
pub fn run_sa(
    env_config: &EnvConfig,
    sa_config: &SaConfig,
    seed: u64,
) -> Result<OptimizationOutcome, RlMulError> {
    run_sa_cached(env_config, sa_config, seed, EvalCache::new())
}

/// [`run_sa`] on top of a shared evaluation cache, so baseline and
/// RL runs over the same design reuse each other's synthesis results.
///
/// # Errors
///
/// As [`run_sa`].
pub fn run_sa_cached(
    env_config: &EnvConfig,
    sa_config: &SaConfig,
    seed: u64,
    cache: EvalCache,
) -> Result<OptimizationOutcome, RlMulError> {
    let mut env = MulEnv::with_cache(env_config.clone(), cache)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let initial = env.current().clone();
    let mut eval_error: Option<RlMulError> = None;
    let outcome = {
        let env_ref = &mut env;
        let err_ref = &mut eval_error;
        simulated_annealing(&initial, sa_config, &mut rng, |tree| {
            match env_ref.evaluate(tree) {
                Ok(e) => e.cost,
                Err(e) => {
                    // Surface the first error after the run; penalize the
                    // state so the annealer walks away from it.
                    if err_ref.is_none() {
                        *err_ref = Some(e);
                    }
                    f64::INFINITY
                }
            }
        })
    };
    if let Some(e) = eval_error {
        return Err(e);
    }
    let stats = env.stats();
    Ok(OptimizationOutcome {
        best: outcome.best,
        best_cost: outcome.best_cost,
        trajectory: outcome.trajectory,
        pareto_points: env.pareto_points().to_vec(),
        states_visited: stats.distinct_states,
        synth_runs: stats.synth_runs,
        pipeline: PipelineStats {
            cache_hits: stats.cache_hits,
            cache_misses: stats.cache_misses,
            cache_entries: stats.distinct_states,
            sta: stats.sta,
            // SA trains no network.
            nn: rlmul_nn::NnStats::default(),
            lint: stats.lint,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlmul_ct::PpgKind;

    #[test]
    fn sa_driver_produces_trajectory_and_legal_best() {
        let env_cfg = EnvConfig::new(4, PpgKind::And);
        let sa_cfg = SaConfig { steps: 20, ..Default::default() };
        let out = run_sa(&env_cfg, &sa_cfg, 42).unwrap();
        assert_eq!(out.trajectory.len(), 20);
        out.best.check_legal().unwrap();
        assert!(out.states_visited >= 1);
    }
}
