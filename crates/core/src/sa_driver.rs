//! Simulated-annealing baseline driven by the same synthesis-backed
//! cost as the RL agents, so Fig. 12-style comparisons isolate the
//! search strategy.

use crate::cache::{CacheKey, EvalCache};
use crate::env::{EnvConfig, EnvSnapshot, Evaluation, MulEnv};
use crate::hooks::{emit_span_events, TrainHooks};
use crate::outcome::{OptimizationOutcome, PipelineStats};
use crate::RlMulError;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rlmul_baselines::{SaConfig, SaParts, SaRun};
use rlmul_telemetry::Event;

/// Complete state of a synthesis-backed SA run at a step boundary:
/// the annealer's walk ([`SaParts`]), the RNG stream, the
/// environment's mutable state and every finished cache entry.
///
/// Opaque outside the crate: produced by checkpointing runs
/// ([`run_sa_with`] with a store), serialized through
/// [`rlmul_ckpt::Record`], consumed by [`resume_sa`].
pub struct SaSnapshot {
    pub(crate) rng: [u64; 4],
    pub(crate) parts: SaParts,
    pub(crate) env: EnvSnapshot,
    pub(crate) cache: Vec<(CacheKey, Evaluation)>,
}

impl SaSnapshot {
    /// Proposal steps completed when the snapshot was taken.
    pub fn steps_done(&self) -> usize {
        self.parts.trajectory.len()
    }

    /// Best cost found up to the snapshot.
    pub fn best_cost(&self) -> f64 {
        self.parts.best_cost
    }
}

impl std::fmt::Debug for SaSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SaSnapshot(step {}, {} cache entries)", self.steps_done(), self.cache.len())
    }
}

/// Runs the SA baseline with the environment's Pareto-driven cost.
///
/// # Errors
///
/// Propagates environment construction and synthesis errors.
pub fn run_sa(
    env_config: &EnvConfig,
    sa_config: &SaConfig,
    seed: u64,
) -> Result<OptimizationOutcome, RlMulError> {
    run_sa_cached(env_config, sa_config, seed, EvalCache::new())
}

/// [`run_sa`] on top of a shared evaluation cache, so baseline and
/// RL runs over the same design reuse each other's synthesis results.
///
/// # Errors
///
/// As [`run_sa`].
pub fn run_sa_cached(
    env_config: &EnvConfig,
    sa_config: &SaConfig,
    seed: u64,
    cache: EvalCache,
) -> Result<OptimizationOutcome, RlMulError> {
    run_sa_with(env_config, sa_config, seed, cache, &TrainHooks::default(), None)
}

/// Rebuilds the annealing run captured in `snapshot` and continues it
/// to `sa_config.steps`. Cache entries are imported before the
/// environment is constructed, so every previously synthesized state
/// is a hit and the resumed walk is bit-identical to an uninterrupted
/// one.
///
/// # Errors
///
/// As [`run_sa`], plus configuration/snapshot mismatches.
pub fn resume_sa(
    env_config: &EnvConfig,
    sa_config: &SaConfig,
    snapshot: SaSnapshot,
    hooks: &TrainHooks,
) -> Result<OptimizationOutcome, RlMulError> {
    // The seed is irrelevant on resume — the RNG stream continues
    // from the snapshot state.
    run_sa_with(env_config, sa_config, 0, EvalCache::new(), hooks, Some(snapshot))
}

/// [`run_sa_cached`] with runtime hooks (telemetry, periodic
/// snapshots, cooperative stop) and an optional resume point.
///
/// # Errors
///
/// As [`run_sa`], plus snapshot write/restore failures.
pub fn run_sa_with(
    env_config: &EnvConfig,
    sa_config: &SaConfig,
    seed: u64,
    cache: EvalCache,
    hooks: &TrainHooks,
    resume: Option<SaSnapshot>,
) -> Result<OptimizationOutcome, RlMulError> {
    let resume = resume.map(|mut snap| {
        cache.import(std::mem::take(&mut snap.cache));
        snap
    });
    let mut env = MulEnv::with_cache(env_config.clone(), cache)?;
    if hooks.telemetry.is_enabled() {
        env.set_telemetry(hooks.telemetry.clone());
    }
    if hooks.trace.is_enabled() {
        env.set_trace(hooks.trace.clone());
    }
    let (mut rng, mut run) = match resume {
        Some(snap) => {
            env.restore(&snap.env)?;
            (StdRng::from_state(snap.rng), SaRun::from_parts(*sa_config, snap.parts))
        }
        None => {
            let initial = env.current().clone();
            let initial_cost = env.evaluate(&initial)?.cost;
            (StdRng::seed_from_u64(seed), SaRun::new(initial, initial_cost, *sa_config))
        }
    };

    let obs = rlmul_obs::global();
    let _train_span = obs.span("train.sa");
    let spans_before = obs.span_stats();
    let agent_steps = obs.labeled_counter(
        "rlmul_agent_steps_total",
        "Optimization steps taken by each agent.",
        &[("method", "sa")],
    );
    let mut eval_error: Option<RlMulError> = None;
    let mut best_saved = f64::INFINITY;
    while !run.is_done() {
        if hooks.stop_requested() {
            break;
        }
        let _step_span = obs.span("sa.step");
        agent_steps.inc();
        {
            let env_ref = &mut env;
            let err_ref = &mut eval_error;
            // With the surrogate enabled, proposals whose predicted
            // uphill delta makes rejection certain at the current
            // temperature are answered by the model instead of
            // synthesis (see `MulEnv::evaluate_gated`). Disabled,
            // this is exactly `MulEnv::evaluate`. Cost and
            // temperature are fixed for the duration of one proposal,
            // so reading them before the step is exact.
            let (cur, temp) = (run.current_cost(), run.temperature());
            run.step(&mut rng, |tree| match env_ref.evaluate_gated(tree, cur, temp) {
                Ok(e) => e.cost,
                Err(e) => {
                    // Surface the first error after the step;
                    // penalize the state so the annealer walks away
                    // from it.
                    if err_ref.is_none() {
                        *err_ref = Some(e);
                    }
                    f64::INFINITY
                }
            });
        }
        if let Some(e) = eval_error.take() {
            return Err(e);
        }
        hooks.report_progress(run.steps_done());
        if hooks.telemetry.is_enabled() {
            hooks.telemetry.emit(
                Event::new("episode")
                    .with("method", "sa")
                    .with("step", (run.steps_done() - 1) as u64)
                    .with("cost", run.current_cost()),
            );
        }
        if hooks.checkpoint_due(run.steps_done(), sa_config.steps) {
            save_sa_checkpoint(&run, &rng, &mut env, hooks, &mut best_saved, true)?;
        }
    }
    // Verification sweep on normal completion only: an interrupted
    // run sweeps when its resumption finishes, so resume stays
    // bit-identical to an uninterrupted run.
    if run.is_done() {
        env.verify_screened()?;
    }
    // Shutdown snapshot: rolled on normal completion and on
    // cooperative stop alike.
    if hooks.store.is_some() {
        save_sa_checkpoint(&run, &rng, &mut env, hooks, &mut best_saved, false)?;
    }

    let stats = env.stats();
    if hooks.telemetry.is_enabled() {
        hooks.telemetry.emit(
            Event::new("cache")
                .with("hits", stats.cache_hits as u64)
                .with("misses", stats.cache_misses as u64),
        );
        emit_span_events(&hooks.telemetry, &obs.span_stats_since(&spans_before));
    }
    let outcome = run.into_outcome();
    Ok(OptimizationOutcome {
        best: outcome.best,
        best_cost: outcome.best_cost,
        trajectory: outcome.trajectory,
        pareto_points: env.pareto_points().to_vec(),
        states_visited: stats.distinct_states,
        synth_runs: stats.synth_runs,
        pipeline: PipelineStats {
            cache_hits: stats.cache_hits,
            cache_misses: stats.cache_misses,
            cache_entries: stats.distinct_states,
            sta: stats.sta,
            // SA trains no network.
            nn: rlmul_nn::NnStats::default(),
            lint: stats.lint,
            synthesis_calls: stats.synthesis_calls,
            surrogate_screened: stats.surrogate_screened,
            surrogate_forced_evals: stats.surrogate_forced_evals,
        },
    })
}

/// Rolls `latest.ckpt` (and `best.ckpt` when the walk improved) with
/// the full annealing state at a step boundary.
fn save_sa_checkpoint(
    run: &SaRun,
    rng: &StdRng,
    env: &mut MulEnv,
    hooks: &TrainHooks,
    best_saved: &mut f64,
    periodic: bool,
) -> Result<(), RlMulError> {
    let Some(store) = &hooks.store else { return Ok(()) };
    let snap = SaSnapshot {
        rng: rng.state(),
        parts: run.to_parts(),
        env: env.snapshot(),
        cache: env.cache().export_entries(),
    };
    store.save_latest(&snap)?;
    if periodic && hooks.keep_history {
        store.save_step(run.steps_done(), &snap)?;
    }
    if run.best_cost() < *best_saved {
        store.save_best(&snap)?;
        *best_saved = run.best_cost();
    }
    hooks.telemetry.emit(
        Event::new("checkpoint")
            .with("step", run.steps_done() as u64)
            .with("path", store.latest_path().display().to_string()),
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlmul_ct::PpgKind;

    #[test]
    fn sa_driver_produces_trajectory_and_legal_best() {
        let env_cfg = EnvConfig::new(4, PpgKind::And);
        let sa_cfg = SaConfig { steps: 20, ..Default::default() };
        let out = run_sa(&env_cfg, &sa_cfg, 42).unwrap();
        assert_eq!(out.trajectory.len(), 20);
        out.best.check_legal().unwrap();
        assert!(out.states_visited >= 1);
    }

    #[test]
    fn sa_resume_matches_uninterrupted_run() {
        let env_cfg = EnvConfig::new(4, PpgKind::And);
        let full_cfg = SaConfig { steps: 16, ..Default::default() };
        let full = run_sa(&env_cfg, &full_cfg, 7).unwrap();

        // Same schedule interrupted at step 8 by the stop flag, then
        // resumed from the snapshot.
        let dir = std::env::temp_dir().join(format!("rlmul-sa-resume-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = rlmul_ckpt::SnapshotStore::new(&dir, "sa");
        let hooks =
            TrainHooks { store: Some(store.clone()), checkpoint_every: 8, ..Default::default() };
        let half_cfg = SaConfig { steps: 8, ..full_cfg };
        run_sa_with(&env_cfg, &half_cfg, 7, EvalCache::new(), &hooks, None).unwrap();
        let snap: SaSnapshot = store.load_latest().unwrap();
        assert_eq!(snap.steps_done(), 8);
        let resumed = resume_sa(&env_cfg, &full_cfg, snap, &TrainHooks::default()).unwrap();

        assert_eq!(full.trajectory, resumed.trajectory);
        assert_eq!(full.best_cost.to_bits(), resumed.best_cost.to_bits());
        assert_eq!(full.best, resumed.best);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
