//! Shared, sharded evaluation cache for synthesis-backed rewards.
//!
//! Synthesizing one compressor-tree state under four delay targets
//! dominates the cost of every learning loop, and parallel
//! environments revisit the same states constantly (they all start
//! from the same legacy structure and explore overlapping
//! neighborhoods). This cache is shared across environments via
//! [`EvalCache::clone`] (a cheap [`Arc`] handle) so that any state
//! synthesized by one worker is free for every other worker.
//!
//! Two mechanisms keep concurrent workers efficient:
//!
//! - **Sharding.** Keys hash to one of [`NUM_SHARDS`] independent
//!   `RwLock`-protected maps, so unrelated lookups never contend.
//! - **In-flight coalescing.** The first worker to miss on a key
//!   installs a pending slot and receives an [`EvalTicket`]; workers
//!   that hit the pending slot block on its condvar instead of
//!   duplicating the (hundreds of milliseconds of) synthesis work.
//!   If the producer fails, waiters wake and retry, and one of them
//!   becomes the new producer.
//!
//! Keys combine the state fingerprint (per-column compressor counts
//! plus the partial-product kind, which together determine the
//! elaborated netlist) with a [`context_fingerprint`] of everything
//! else the cost depends on: the exact delay-target bit patterns, the
//! sizing budget, and the reward weights.

use crate::env::Evaluation;
use rlmul_check::sync::{Condvar, Mutex, RwLock};
use rlmul_ct::PpgKind;
use std::collections::hash_map::{DefaultHasher, Entry};
// check: allow(hash-iter) export_entries sorts by key before serializing
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Shards of the cache map; a small power of two keeps the modulo
/// cheap while making same-shard contention between a handful of
/// worker threads unlikely.
const NUM_SHARDS: usize = 16;

/// Full identity of one cached evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheKey {
    /// Per-column `(full adders, half adders)`-style compressor
    /// counts — the compressor tree's structural fingerprint.
    pub counts: Vec<(u32, u32)>,
    /// Partial-product scheme (distinct kinds elaborate to distinct
    /// netlists even with equal counts).
    pub kind: PpgKind,
    /// Fingerprint of the synthesis/reward context; see
    /// [`context_fingerprint`].
    pub context: u64,
}

/// One hash recipe shared by [`CacheKey`] and borrowed key views, so
/// a `HashMap<CacheKey, _>` can be probed with either (the
/// [`std::borrow::Borrow`] contract requires identical hashes).
fn hash_key_parts<H: Hasher>(counts: &[(u32, u32)], kind: PpgKind, context: u64, state: &mut H) {
    counts.hash(state);
    kind.hash(state);
    context.hash(state);
}

impl Hash for CacheKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        hash_key_parts(&self.counts, self.kind, self.context, state);
    }
}

/// Anything that can identify a cached evaluation. Lookups take
/// `&dyn AsCacheKey`, so the hot hit path can probe with a borrowed
/// [`CacheKeyRef`] — no per-lookup clone of the per-column counts —
/// while the miss path materializes an owned [`CacheKey`] exactly
/// once, when the entry is installed.
pub trait AsCacheKey {
    /// The per-column compressor counts.
    fn counts(&self) -> &[(u32, u32)];
    /// The partial-product scheme.
    fn kind(&self) -> PpgKind;
    /// The synthesis/reward context fingerprint.
    fn context(&self) -> u64;

    /// Materializes an owned key (allocates; miss path only).
    fn to_key(&self) -> CacheKey {
        CacheKey { counts: self.counts().to_vec(), kind: self.kind(), context: self.context() }
    }
}

impl AsCacheKey for CacheKey {
    fn counts(&self) -> &[(u32, u32)] {
        &self.counts
    }
    fn kind(&self) -> PpgKind {
        self.kind
    }
    fn context(&self) -> u64 {
        self.context
    }
    fn to_key(&self) -> CacheKey {
        self.clone()
    }
}

/// Borrowed key view over a compressor tree's live count slice.
#[derive(Debug, Clone, Copy)]
pub struct CacheKeyRef<'a> {
    /// Borrowed per-column compressor counts.
    pub counts: &'a [(u32, u32)],
    /// Partial-product scheme.
    pub kind: PpgKind,
    /// Context fingerprint.
    pub context: u64,
}

impl AsCacheKey for CacheKeyRef<'_> {
    fn counts(&self) -> &[(u32, u32)] {
        self.counts
    }
    fn kind(&self) -> PpgKind {
        self.kind
    }
    fn context(&self) -> u64 {
        self.context
    }
}

impl Hash for dyn AsCacheKey + '_ {
    fn hash<H: Hasher>(&self, state: &mut H) {
        hash_key_parts(self.counts(), self.kind(), self.context(), state);
    }
}

impl PartialEq for dyn AsCacheKey + '_ {
    fn eq(&self, other: &Self) -> bool {
        self.counts() == other.counts()
            && self.kind() == other.kind()
            && self.context() == other.context()
    }
}

impl Eq for dyn AsCacheKey + '_ {}

impl<'a> std::borrow::Borrow<dyn AsCacheKey + 'a> for CacheKey {
    fn borrow(&self) -> &(dyn AsCacheKey + 'a) {
        self
    }
}

/// Hashes the non-structural inputs of an evaluation: exact delay
/// targets, sizing budget, and reward weights. FNV-1a over the raw
/// bit patterns, so any numeric difference yields a different cache
/// identity.
pub fn context_fingerprint(delay_targets: &[f64], max_upsizes: usize, weights: [f64; 3]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    mix(delay_targets.len() as u64);
    for &t in delay_targets {
        mix(t.to_bits());
    }
    mix(max_upsizes as u64);
    for w in weights {
        mix(w.to_bits());
    }
    h
}

/// State of one in-flight computation.
#[derive(Debug, Default)]
enum InflightState {
    /// The producer is still synthesizing.
    #[default]
    Running,
    /// The producer published a result.
    Ready(Arc<Evaluation>),
    /// The producer dropped its ticket without a result.
    Abandoned,
}

#[derive(Debug)]
struct Inflight {
    state: Mutex<InflightState>,
    cv: Condvar,
}

impl Default for Inflight {
    fn default() -> Self {
        Inflight {
            state: Mutex::new("core.cache.inflight", InflightState::default()),
            cv: Condvar::new("core.cache.inflight"),
        }
    }
}

#[derive(Debug, Clone)]
enum Slot {
    Ready(Arc<Evaluation>),
    Pending(Arc<Inflight>),
}

#[derive(Debug, Default)]
struct CacheInner {
    // check: allow(hash-iter) never iterated for export; see export_entries sort
    shards: Vec<RwLock<HashMap<CacheKey, Slot>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    coalesced: AtomicUsize,
    obs: CacheObs,
}

/// Pre-registered handles into the global observability registry.
/// The per-cache counters above stay the source for [`CacheStats`]
/// (tests pin their exact per-instance values); these mirror the same
/// increments into the process-wide scrape surface.
#[derive(Debug, Default)]
struct CacheObs {
    hits: rlmul_obs::Counter,
    misses: rlmul_obs::Counter,
    coalesced: rlmul_obs::Counter,
    entries: rlmul_obs::Gauge,
}

impl CacheObs {
    fn new() -> Self {
        let obs = rlmul_obs::global();
        CacheObs {
            hits: obs.labeled_counter(
                "rlmul_cache_lookups_total",
                "Evaluation-cache lookups by result.",
                &[("result", "hit")],
            ),
            misses: obs.labeled_counter(
                "rlmul_cache_lookups_total",
                "Evaluation-cache lookups by result.",
                &[("result", "miss")],
            ),
            coalesced: obs.counter(
                "rlmul_cache_coalesced_total",
                "Cache hits that waited on another worker's in-flight synthesis.",
            ),
            entries: obs.gauge("rlmul_cache_entries", "Finished evaluation-cache entries stored."),
        }
    }
}

/// Counter snapshot; see the field docs for meanings.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from a finished entry (includes coalesced).
    pub hits: usize,
    /// Lookups that had to synthesize (tickets issued).
    pub misses: usize,
    /// Hits that waited on another worker's in-flight synthesis
    /// instead of duplicating it.
    pub coalesced: usize,
    /// Finished entries currently stored.
    pub entries: usize,
}

/// Result of [`EvalCache::lookup_or_begin`].
pub enum Lookup {
    /// The evaluation already exists (possibly computed by another
    /// worker while we waited).
    Hit(Arc<Evaluation>),
    /// This caller is now the producer for the key and must
    /// [`EvalTicket::complete`] the ticket (or drop it on failure,
    /// which releases waiting workers to retry).
    Miss(EvalTicket),
}

/// Cloneable handle to a cache shared by every clone.
#[derive(Debug, Clone)]
pub struct EvalCache {
    inner: Arc<CacheInner>,
}

impl Default for EvalCache {
    fn default() -> Self {
        Self::new()
    }
}

impl EvalCache {
    /// An empty cache.
    pub fn new() -> Self {
        let shards = (0..NUM_SHARDS)
            // check: allow(hash-iter) export_entries sorts by key before serializing
            .map(|_| RwLock::new("core.cache.shard", HashMap::new()))
            .collect();
        EvalCache {
            inner: Arc::new(CacheInner {
                shards,
                hits: AtomicUsize::new(0),
                misses: AtomicUsize::new(0),
                coalesced: AtomicUsize::new(0),
                obs: CacheObs::new(),
            }),
        }
    }

    // check: allow(hash-iter) lookup only; ordered export lives in export_entries
    fn shard(&self, key: &dyn AsCacheKey) -> &RwLock<HashMap<CacheKey, Slot>> {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        &self.inner.shards[hasher.finish() as usize % NUM_SHARDS]
    }

    /// Returns the finished evaluation for `key` or makes the caller
    /// the producer. Blocks (rather than duplicating synthesis work)
    /// while another worker computes the same key.
    ///
    /// Accepts any key view (owned [`CacheKey`] or borrowed
    /// [`CacheKeyRef`]); an owned key is materialized only when this
    /// caller actually becomes the producer, so the hit path is
    /// allocation-free.
    pub fn lookup_or_begin(&self, key: &dyn AsCacheKey) -> Lookup {
        loop {
            let pending = {
                let shard = self.shard(key).read();
                match shard.get(key) {
                    Some(Slot::Ready(eval)) => {
                        self.inner.hits.fetch_add(1, Ordering::Relaxed);
                        self.inner.obs.hits.inc();
                        return Lookup::Hit(eval.clone());
                    }
                    Some(Slot::Pending(inflight)) => Some(inflight.clone()),
                    None => None,
                }
            };

            if let Some(inflight) = pending {
                let mut state = inflight.state.lock();
                while matches!(*state, InflightState::Running) {
                    state = inflight.cv.wait(state);
                }
                if let InflightState::Ready(eval) = &*state {
                    self.inner.hits.fetch_add(1, Ordering::Relaxed);
                    self.inner.coalesced.fetch_add(1, Ordering::Relaxed);
                    self.inner.obs.hits.inc();
                    self.inner.obs.coalesced.inc();
                    return Lookup::Hit(eval.clone());
                }
                // Producer abandoned the key; race to become the new
                // producer on the next loop iteration.
                continue;
            }

            let mut shard = self.shard(key).write();
            if shard.contains_key(key) {
                // Another worker installed a slot between our read
                // and write; re-examine it under the read path.
                continue;
            }
            // First genuine miss: materialize the owned key now — the
            // single allocation point of the lookup path.
            let owned = key.to_key();
            let inflight = Arc::new(Inflight::default());
            shard.insert(owned.clone(), Slot::Pending(inflight.clone()));
            self.inner.misses.fetch_add(1, Ordering::Relaxed);
            self.inner.obs.misses.inc();
            return Lookup::Miss(EvalTicket {
                cache: self.clone(),
                key: owned,
                inflight,
                completed: false,
            });
        }
    }

    /// Non-blocking read of a finished entry; pending and absent keys
    /// both return `None`. Does not touch the hit/miss counters.
    /// Accepts borrowed key views, so probing is allocation-free.
    pub fn peek(&self, key: &dyn AsCacheKey) -> Option<Arc<Evaluation>> {
        let shard = self.shard(key).read();
        match shard.get(key) {
            Some(Slot::Ready(eval)) => Some(eval.clone()),
            _ => None,
        }
    }

    /// Number of finished entries across all shards.
    pub fn len(&self) -> usize {
        self.inner
            .shards
            .iter()
            .map(|s| s.read().values().filter(|slot| matches!(slot, Slot::Ready(_))).count())
            .sum()
    }

    /// Whether no finished entry exists.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Clones every *finished* entry out of the cache, for inclusion
    /// in a checkpoint. Pending (in-flight) computations are skipped —
    /// they belong to the producer that will complete or abandon them.
    /// The order is deterministic for a deterministic insertion
    /// history: entries are sorted by key.
    pub fn export_entries(&self) -> Vec<(CacheKey, Evaluation)> {
        let mut entries: Vec<(CacheKey, Evaluation)> = self
            .inner
            .shards
            .iter()
            .flat_map(|s| {
                s.read()
                    .iter()
                    .filter_map(|(k, slot)| match slot {
                        Slot::Ready(eval) => Some((k.clone(), (**eval).clone())),
                        Slot::Pending(_) => None,
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
        entries.sort_by(|(a, _), (b, _)| {
            (&a.counts, a.kind as u8, a.context).cmp(&(&b.counts, b.kind as u8, b.context))
        });
        entries
    }

    /// Seeds the cache with previously exported entries (the resume
    /// path: every state synthesized before the checkpoint becomes a
    /// hit). Keys already present — finished or in flight — are left
    /// untouched. Returns the number of entries inserted.
    pub fn import(&self, entries: Vec<(CacheKey, Evaluation)>) -> usize {
        let mut inserted = 0;
        for (key, eval) in entries {
            let mut shard = self.shard(&key).write();
            if let Entry::Vacant(vacant) = shard.entry(key) {
                vacant.insert(Slot::Ready(Arc::new(eval)));
                inserted += 1;
            }
        }
        self.inner.obs.entries.add(inserted as f64);
        inserted
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.inner.hits.load(Ordering::Relaxed),
            misses: self.inner.misses.load(Ordering::Relaxed),
            coalesced: self.inner.coalesced.load(Ordering::Relaxed),
            entries: self.len(),
        }
    }
}

/// Producer-side handle for one pending key.
///
/// Dropping the ticket without [`EvalTicket::complete`] removes the
/// pending slot and wakes waiters so one of them can take over — a
/// failed synthesis never wedges other workers.
#[must_use = "complete the ticket or drop it to release waiting workers"]
pub struct EvalTicket {
    cache: EvalCache,
    key: CacheKey,
    inflight: Arc<Inflight>,
    completed: bool,
}

impl EvalTicket {
    /// Publishes `eval` for the key and wakes all coalesced waiters.
    pub fn complete(mut self, eval: Arc<Evaluation>) {
        {
            let mut shard = self.cache.shard(&self.key).write();
            shard.insert(self.key.clone(), Slot::Ready(eval.clone()));
        }
        self.cache.inner.obs.entries.add(1.0);
        let mut state = self.inflight.state.lock();
        *state = InflightState::Ready(eval);
        self.inflight.cv.notify_all();
        drop(state);
        self.completed = true;
    }
}

impl Drop for EvalTicket {
    fn drop(&mut self) {
        if self.completed {
            return;
        }
        {
            let mut shard = self.cache.shard(&self.key).write();
            if let Some(Slot::Pending(p)) = shard.get(&self.key) {
                if Arc::ptr_eq(p, &self.inflight) {
                    shard.remove(&self.key);
                }
            }
        }
        let mut state = self.inflight.state.lock();
        *state = InflightState::Abandoned;
        self.inflight.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(tag: u32) -> CacheKey {
        CacheKey { counts: vec![(tag, 0)], kind: PpgKind::And, context: 7 }
    }

    fn eval(cost: f64) -> Arc<Evaluation> {
        Arc::new(Evaluation { reports: Vec::new(), cost })
    }

    #[test]
    fn miss_then_hit_round_trips() {
        let cache = EvalCache::new();
        let Lookup::Miss(ticket) = cache.lookup_or_begin(&key(1)) else {
            panic!("fresh key must miss");
        };
        ticket.complete(eval(2.5));
        let Lookup::Hit(e) = cache.lookup_or_begin(&key(1)) else {
            panic!("completed key must hit");
        };
        assert_eq!(e.cost, 2.5);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn borrowed_key_views_alias_owned_keys() {
        let cache = EvalCache::new();
        let counts = [(1u32, 0u32)];
        let kref = CacheKeyRef { counts: &counts, kind: PpgKind::And, context: 7 };
        // Miss through the borrowed view materializes the owned key.
        let Lookup::Miss(ticket) = cache.lookup_or_begin(&kref) else {
            panic!("fresh key must miss");
        };
        ticket.complete(eval(3.5));
        // Both views resolve to the same entry (same hash, same shard).
        assert_eq!(cache.peek(&kref).unwrap().cost, 3.5);
        assert_eq!(cache.peek(&key(1)).unwrap().cost, 3.5);
        assert!(matches!(cache.lookup_or_begin(&key(1)), Lookup::Hit(_)));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn clones_share_entries() {
        let a = EvalCache::new();
        let b = a.clone();
        if let Lookup::Miss(t) = a.lookup_or_begin(&key(3)) {
            t.complete(eval(1.0));
        }
        assert!(matches!(b.lookup_or_begin(&key(3)), Lookup::Hit(_)));
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn distinct_contexts_are_distinct_entries() {
        let cache = EvalCache::new();
        let mut k2 = key(4);
        k2.context = 8;
        if let Lookup::Miss(t) = cache.lookup_or_begin(&key(4)) {
            t.complete(eval(1.0));
        }
        assert!(matches!(cache.lookup_or_begin(&k2), Lookup::Miss(_)));
    }

    #[test]
    fn abandoned_ticket_lets_next_caller_produce() {
        let cache = EvalCache::new();
        let Lookup::Miss(ticket) = cache.lookup_or_begin(&key(5)) else {
            panic!("fresh key must miss");
        };
        drop(ticket);
        assert!(matches!(cache.lookup_or_begin(&key(5)), Lookup::Miss(_)));
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn waiters_coalesce_on_inflight_work() {
        let cache = EvalCache::new();
        let Lookup::Miss(ticket) = cache.lookup_or_begin(&key(6)) else {
            panic!("fresh key must miss");
        };
        let waiters: Vec<_> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let cache = cache.clone();
                    scope.spawn(move || match cache.lookup_or_begin(&key(6)) {
                        Lookup::Hit(e) => e.cost,
                        Lookup::Miss(_) => panic!("waiter must not become producer"),
                    })
                })
                .collect();
            // Give the waiters time to park on the pending slot, then
            // publish.
            std::thread::sleep(std::time::Duration::from_millis(20));
            ticket.complete(eval(9.0));
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(waiters.iter().all(|&c| c == 9.0));
        let s = cache.stats();
        assert_eq!(s.misses, 1, "only one producer");
        assert_eq!(s.hits, 4);
        assert!(s.coalesced >= 1);
    }

    #[test]
    fn export_import_round_trips_finished_entries() {
        let cache = EvalCache::new();
        for i in 0..5 {
            if let Lookup::Miss(t) = cache.lookup_or_begin(&key(i)) {
                t.complete(eval(i as f64));
            }
        }
        // A pending entry must not be exported.
        let Lookup::Miss(pending) = cache.lookup_or_begin(&key(99)) else {
            panic!("fresh key must miss");
        };
        let entries = cache.export_entries();
        assert_eq!(entries.len(), 5);
        drop(pending);

        let restored = EvalCache::new();
        assert_eq!(restored.import(entries.clone()), 5);
        for i in 0..5 {
            assert_eq!(restored.peek(&key(i)).unwrap().cost, i as f64);
        }
        // Re-import is a no-op, and export order is deterministic.
        assert_eq!(restored.import(entries.clone()), 0);
        assert_eq!(
            restored.export_entries().iter().map(|(k, _)| k.clone()).collect::<Vec<_>>(),
            entries.iter().map(|(k, _)| k.clone()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn context_fingerprint_separates_numeric_inputs() {
        let a = context_fingerprint(&[0.7, 0.85], 800, [4.0, 1.0, 0.0]);
        let b = context_fingerprint(&[0.7, 0.85], 800, [4.0, 1.0, 1e-9]);
        let c = context_fingerprint(&[0.7, 0.86], 800, [4.0, 1.0, 0.0]);
        let d = context_fingerprint(&[0.7, 0.85], 801, [4.0, 1.0, 0.0]);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert_eq!(a, context_fingerprint(&[0.7, 0.85], 800, [4.0, 1.0, 0.0]));
    }
}
