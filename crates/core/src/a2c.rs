//! RL-MUL-E: synchronous parallel advantage actor–critic
//! (paper Section IV-A, Algorithm 4).
//!
//! `n` environment instances step in parallel threads; the policy and
//! value heads share the residual trunk (as the paper shares
//! ResNet-18's convolutional layers). Updates use `k`-step
//! bootstrapped returns, masked-softmax action sampling (Eqs. 13–15),
//! the policy gradient of Eq. 16 and the TD value loss of Eq. 19,
//! plus an entropy bonus for sustained exploration.

use crate::cache::{CacheKey, EvalCache};
use crate::env::{EnvConfig, EnvSnapshot, Evaluation, MulEnv};
use crate::hooks::{emit_span_events, TrainHooks};
use crate::outcome::{OptimizationOutcome, PipelineStats};
use crate::RlMulError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rlmul_check::sync::{channel, Receiver, Sender};
use rlmul_nn::{
    clip_grad_norm, entropy, masked_softmax, restore_net, snapshot_net, Adam, Layer, Linear,
    NetSnapshot, NnStats, Optimizer, Param, Sequential, Tensor, TrunkConfig,
};
use rlmul_telemetry::Event;
use std::thread::{Scope, ScopedJoinHandle};

/// A2C hyper-parameters. The paper's RL-MUL-E uses four synchronized
/// workers and a five-step return; those are the defaults.
#[derive(Debug, Clone)]
pub struct A2cConfig {
    /// Environment steps per worker.
    pub steps: usize,
    /// Number of parallel environment instances `n`.
    pub n_envs: usize,
    /// Update interval / bootstrap horizon `t_up` (paper: 5).
    pub n_step: usize,
    /// Discount factor γ.
    pub gamma: f32,
    /// Learning rate.
    pub lr: f32,
    /// Entropy-bonus coefficient.
    pub entropy_coef: f32,
    /// Value-loss coefficient.
    pub value_coef: f32,
    /// Gradient-norm clip.
    pub grad_clip: f32,
    /// Shared trunk configuration.
    pub trunk: TrunkConfig,
    /// RNG seed.
    pub seed: u64,
}

impl Default for A2cConfig {
    fn default() -> Self {
        A2cConfig {
            steps: 120,
            n_envs: 4,
            n_step: 5,
            gamma: 0.8,
            lr: 7e-4,
            entropy_coef: 0.01,
            value_coef: 0.5,
            grad_clip: 5.0,
            trunk: TrunkConfig { in_channels: 2, channels: vec![8, 16, 32], blocks_per_stage: 1 },
            seed: 0,
        }
    }
}

/// Actor–critic network with a shared convolutional trunk.
pub struct PolicyValueNet {
    trunk: Sequential,
    policy: Linear,
    value: Linear,
}

impl std::fmt::Debug for PolicyValueNet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PolicyValueNet({:?})", self.trunk)
    }
}

impl PolicyValueNet {
    /// Builds the shared-trunk actor–critic for `actions` outputs.
    pub fn new<R: Rng + ?Sized>(trunk_cfg: &TrunkConfig, actions: usize, rng: &mut R) -> Self {
        let trunk = rlmul_nn::build_trunk(trunk_cfg, rng);
        let mut policy = Linear::new(trunk_cfg.feature_dim(), actions, rng);
        policy.scale_parameters(0.01); // near-uniform initial policy
        let value = Linear::new(trunk_cfg.feature_dim(), 1, rng);
        PolicyValueNet { trunk, policy, value }
    }

    /// Forward pass returning `(logits [b, A], values [b, 1])`.
    pub fn forward_both(&mut self, x: &Tensor, train: bool) -> (Tensor, Tensor) {
        let features = self.trunk.forward(x, train);
        let logits = self.policy.forward(&features, train);
        let values = self.value.forward(&features, train);
        (logits, values)
    }

    /// Backward pass combining both heads' gradients through the
    /// shared trunk.
    pub fn backward_both(&mut self, grad_logits: &Tensor, grad_values: &Tensor) {
        let mut g = self.policy.backward(grad_logits);
        g.add_assign(&self.value.backward(grad_values));
        self.trunk.backward(&g);
    }

    /// Visits all trainable parameters.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.trunk.visit_params(f);
        self.policy.visit_params(f);
        self.value.visit_params(f);
    }

    /// Visits non-trainable forward state (batch-norm running
    /// statistics), mirroring [`Layer::visit_state`].
    pub fn visit_state(&mut self, f: &mut dyn FnMut(&mut Vec<f32>)) {
        self.trunk.visit_state(f);
        self.policy.visit_state(f);
        self.value.visit_state(f);
    }
}

/// Adapter so optimizers (which drive `Layer`) can update the
/// two-headed network.
struct NetAsLayer<'a>(&'a mut PolicyValueNet);
impl Layer for NetAsLayer<'_> {
    fn forward(&mut self, _x: &Tensor, _train: bool) -> Tensor {
        unreachable!("optimizer adapter never runs forward")
    }
    fn backward(&mut self, _g: &Tensor) -> Tensor {
        unreachable!("optimizer adapter never runs backward")
    }
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.0.visit_params(f);
    }
    fn visit_state(&mut self, f: &mut dyn FnMut(&mut Vec<f32>)) {
        self.0.visit_state(f);
    }
}

#[derive(Debug, Clone)]
pub(crate) struct Sample {
    pub(crate) state: Vec<f32>,
    pub(crate) mask: Vec<bool>,
    pub(crate) action: usize,
    pub(crate) reward: f32,
}

/// Everything the main loop needs back from one environment step.
/// Computed inside the worker so encoding and mask derivation also
/// run in parallel.
struct StepReply {
    reward: f64,
    cost: f64,
    state: Vec<f32>,
    mask: Vec<bool>,
}

fn step_reply(env: &mut MulEnv, action: usize) -> Result<StepReply, RlMulError> {
    let out = env.step(action)?;
    let state = env.encode_current()?.data().to_vec();
    let mask = env.action_mask();
    Ok(StepReply { reward: out.reward, cost: out.cost, state, mask })
}

/// Commands the main thread sends a pool worker.
enum Cmd {
    /// Step the environment with this flattened action index.
    Step(usize),
    /// Capture the environment's [`EnvSnapshot`] at the current step
    /// boundary (the checkpoint path).
    Snapshot,
}

/// Worker replies, matching [`Cmd`] one-to-one.
enum Reply {
    Step(Box<Result<StepReply, RlMulError>>),
    Snapshot(Box<EnvSnapshot>),
}

/// A persistent worker per environment, fed commands over a channel —
/// threads are spawned once per training run instead of once per
/// step. Workers hand their environment back at [`EnvPool::finish`].
///
/// With a single environment no threads are spawned at all (serial
/// fallback); results are identical either way because action
/// selection (and its RNG) stays on the main thread and replies are
/// collected in environment order.
enum EnvPool<'scope> {
    Serial(Vec<MulEnv>),
    Parallel(Vec<PoolWorker<'scope>>),
}

struct PoolWorker<'scope> {
    tx: Sender<Cmd>,
    rx: Receiver<Reply>,
    handle: ScopedJoinHandle<'scope, MulEnv>,
}

impl<'scope> EnvPool<'scope> {
    fn launch<'env>(scope: &'scope Scope<'scope, 'env>, envs: Vec<MulEnv>) -> Self {
        if envs.len() == 1 {
            return EnvPool::Serial(envs);
        }
        let workers = envs
            .into_iter()
            .map(|mut env| {
                let (tx_cmd, rx_cmd) = channel::<Cmd>("core.pool.cmd");
                let (tx_reply, rx_reply) = channel("core.pool.reply");
                let handle = scope.spawn(move || {
                    while let Ok(cmd) = rx_cmd.recv() {
                        let reply = match cmd {
                            Cmd::Step(action) => {
                                Reply::Step(Box::new(step_reply(&mut env, action)))
                            }
                            Cmd::Snapshot => Reply::Snapshot(Box::new(env.snapshot())),
                        };
                        if tx_reply.send(reply).is_err() {
                            break;
                        }
                    }
                    env
                });
                PoolWorker { tx: tx_cmd, rx: rx_reply, handle }
            })
            .collect();
        EnvPool::Parallel(workers)
    }

    /// Steps every environment with its action; replies come back in
    /// environment order regardless of completion order.
    fn step_all(&mut self, actions: &[usize]) -> Vec<Result<StepReply, RlMulError>> {
        match self {
            EnvPool::Serial(envs) => {
                envs.iter_mut().zip(actions).map(|(env, &a)| step_reply(env, a)).collect()
            }
            EnvPool::Parallel(workers) => {
                for (w, &a) in workers.iter().zip(actions) {
                    w.tx.send(Cmd::Step(a)).expect("worker thread exited early");
                }
                workers
                    .iter()
                    .map(|w| match w.rx.recv().expect("worker thread panicked") {
                        Reply::Step(r) => *r,
                        Reply::Snapshot(_) => unreachable!("step command answered with snapshot"),
                    })
                    .collect()
            }
        }
    }

    /// Collects every environment's snapshot at the current step
    /// boundary (workers are idle between `step_all` calls, so this
    /// observes a consistent global state).
    fn snapshot_all(&mut self) -> Vec<EnvSnapshot> {
        match self {
            EnvPool::Serial(envs) => envs.iter_mut().map(MulEnv::snapshot).collect(),
            EnvPool::Parallel(workers) => {
                for w in workers.iter() {
                    w.tx.send(Cmd::Snapshot).expect("worker thread exited early");
                }
                workers
                    .iter()
                    .map(|w| match w.rx.recv().expect("worker thread panicked") {
                        Reply::Snapshot(s) => *s,
                        Reply::Step(_) => unreachable!("snapshot command answered with step"),
                    })
                    .collect()
            }
        }
    }

    /// Shuts the workers down and returns the environments.
    fn finish(self) -> Vec<MulEnv> {
        match self {
            EnvPool::Serial(envs) => envs,
            EnvPool::Parallel(workers) => workers
                .into_iter()
                .map(|w| {
                    drop(w.tx);
                    w.handle.join().expect("worker thread panicked")
                })
                .collect(),
        }
    }
}

/// Trains RL-MUL-E: `config.n_envs` synchronized environments built
/// from `env_config`, one shared model. Returns the pooled outcome
/// (best design across workers, mean-cost trajectory, union of
/// synthesized points).
///
/// # Errors
///
/// Propagates environment construction and stepping errors.
pub fn train_a2c(
    env_config: &EnvConfig,
    config: &A2cConfig,
) -> Result<OptimizationOutcome, RlMulError> {
    train_a2c_cached(env_config, config, EvalCache::new())
}

/// [`train_a2c`] on top of an existing shared evaluation cache, so
/// several training runs (or a training run after a baseline sweep)
/// can reuse each other's synthesized states.
///
/// # Errors
///
/// As [`train_a2c`].
pub fn train_a2c_cached(
    env_config: &EnvConfig,
    config: &A2cConfig,
    cache: EvalCache,
) -> Result<OptimizationOutcome, RlMulError> {
    train_a2c_with(env_config, config, cache, &TrainHooks::default(), None)
}

/// Complete training state of an RL-MUL-E run at a step boundary:
/// the shared network (weights and batch-norm running statistics),
/// Adam moments, every worker's in-progress rollout, per-worker
/// environment snapshots, the RNG stream and the shared cache.
///
/// Opaque outside the crate: produced by checkpointing runs
/// ([`train_a2c_with`] with a store), serialized through
/// [`rlmul_ckpt::Record`], consumed by [`resume_a2c`].
pub struct A2cSnapshot {
    pub(crate) step: usize,
    pub(crate) rng: [u64; 4],
    pub(crate) net: NetSnapshot,
    pub(crate) adam_t: i64,
    pub(crate) adam_m: Vec<Tensor>,
    pub(crate) adam_v: Vec<Tensor>,
    pub(crate) rollout: Vec<Vec<Sample>>,
    pub(crate) states: Vec<Vec<f32>>,
    pub(crate) masks: Vec<Vec<bool>>,
    pub(crate) trajectory: Vec<f64>,
    pub(crate) envs: Vec<EnvSnapshot>,
    pub(crate) cache: Vec<(CacheKey, Evaluation)>,
}

impl A2cSnapshot {
    /// Synchronized steps completed when the snapshot was taken.
    pub fn step(&self) -> usize {
        self.step
    }

    /// Best cost across all workers at the snapshot.
    pub fn best_cost(&self) -> f64 {
        self.envs.iter().map(EnvSnapshot::best_cost).fold(f64::INFINITY, f64::min)
    }
}

impl std::fmt::Debug for A2cSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "A2cSnapshot(step {}, {} workers, {} cache entries)",
            self.step,
            self.envs.len(),
            self.cache.len()
        )
    }
}

/// Rebuilds the training run captured in `snapshot` and continues it
/// to `config.steps`. The snapshot's cache entries are imported
/// before the worker environments are constructed, so their anchor
/// synthesis and every previously evaluated state are cache hits and
/// the resumed run is bit-identical to an uninterrupted one.
///
/// # Errors
///
/// As [`train_a2c`], plus configuration/snapshot mismatches.
pub fn resume_a2c(
    env_config: &EnvConfig,
    config: &A2cConfig,
    snapshot: A2cSnapshot,
    hooks: &TrainHooks,
) -> Result<OptimizationOutcome, RlMulError> {
    train_a2c_with(env_config, config, EvalCache::new(), hooks, Some(snapshot))
}

/// [`train_a2c_cached`] with runtime hooks (telemetry, periodic
/// snapshots, cooperative stop) and an optional resume point.
///
/// # Errors
///
/// As [`train_a2c`], plus snapshot write/restore failures.
pub fn train_a2c_with(
    env_config: &EnvConfig,
    config: &A2cConfig,
    cache: EvalCache,
    hooks: &TrainHooks,
    resume: Option<A2cSnapshot>,
) -> Result<OptimizationOutcome, RlMulError> {
    if config.n_envs == 0 || config.n_step == 0 {
        return Err(RlMulError::InvalidConfig { what: "n_envs and n_step must be ≥ 1".into() });
    }
    // Import the snapshot's cache before constructing the workers, so
    // their anchor runs and initial-state evaluations all hit.
    let resume = resume.map(|mut snap| {
        cache.import(std::mem::take(&mut snap.cache));
        snap
    });
    if let Some(snap) = &resume {
        let n = config.n_envs;
        if snap.envs.len() != n
            || snap.states.len() != n
            || snap.masks.len() != n
            || snap.rollout.len() != n
        {
            return Err(RlMulError::InvalidConfig {
                what: format!("snapshot has {} workers, configuration has {n}", snap.envs.len()),
            });
        }
        if snap.step > config.steps {
            return Err(RlMulError::InvalidConfig {
                what: format!(
                    "snapshot at step {} exceeds the {}-step budget",
                    snap.step, config.steps
                ),
            });
        }
    }
    // Network forwards/backwards all run on this thread; the env
    // workers only step environments, so a thread-local snapshot
    // captures the whole run's dense-kernel work.
    let nn_before = NnStats::snapshot();
    // All workers share one evaluation cache: a state synthesized by
    // any of them is a hit for the rest, and the in-flight coalescing
    // keeps two workers from ever synthesizing the same state at the
    // same time.
    let mut envs: Vec<MulEnv> = (0..config.n_envs)
        .map(|_| MulEnv::with_cache(env_config.clone(), cache.clone()))
        .collect::<Result<_, _>>()?;
    if hooks.telemetry.is_enabled() {
        for env in &mut envs {
            env.set_telemetry(hooks.telemetry.clone());
        }
    }
    if hooks.trace.is_enabled() {
        for env in &mut envs {
            env.set_trace(hooks.trace.clone());
        }
    }
    let actions = envs[0].action_space();
    let shape = envs[0].tensor_shape();
    let volume: usize = shape[1] * shape[2] * shape[3];
    let mut opt = Adam::new(config.lr);

    let (mut rng, mut net, mut states, mut masks, mut rollout, mut trajectory, start) = match resume
    {
        Some(snap) => {
            for (env, es) in envs.iter_mut().zip(&snap.envs) {
                env.restore(es)?;
            }
            let mut net = PolicyValueNet::new(
                &config.trunk,
                actions,
                &mut StdRng::seed_from_u64(config.seed),
            );
            restore_net(&mut NetAsLayer(&mut net), &snap.net)?;
            opt.set_state(snap.adam_t, snap.adam_m, snap.adam_v);
            (
                StdRng::from_state(snap.rng),
                net,
                snap.states,
                snap.masks,
                snap.rollout,
                snap.trajectory,
                snap.step,
            )
        }
        None => {
            let mut rng = StdRng::seed_from_u64(config.seed);
            let net = PolicyValueNet::new(&config.trunk, actions, &mut rng);
            let states: Vec<Vec<f32>> = envs
                .iter()
                .map(|e| Ok(e.encode_current()?.data().to_vec()))
                .collect::<Result<_, RlMulError>>()?;
            let masks: Vec<Vec<bool>> = envs.iter().map(|e| e.action_mask()).collect();
            let rollout: Vec<Vec<Sample>> = vec![Vec::new(); config.n_envs];
            (rng, net, states, masks, rollout, Vec::with_capacity(config.steps), 0)
        }
    };

    let obs = rlmul_obs::global();
    let _train_span = obs.span("train.a2c");
    let spans_before = obs.span_stats();
    let agent_steps = obs.labeled_counter(
        "rlmul_agent_steps_total",
        "Optimization steps taken by each agent.",
        &[("method", "a2c")],
    );
    let mut best_saved = f64::INFINITY;
    let mut completed = start;
    let mut envs = std::thread::scope(|scope| -> Result<Vec<MulEnv>, RlMulError> {
        let mut pool = EnvPool::launch(scope, envs);
        for t in start..config.steps {
            if hooks.stop_requested() {
                break;
            }
            let _step_span = obs.span("a2c.step");
            agent_steps.inc();
            // Policy forward over all workers at once; action
            // sampling stays on the main thread so the RNG stream —
            // and therefore the whole run — is independent of worker
            // scheduling.
            let mut batch = Vec::with_capacity(config.n_envs * volume);
            for s in &states {
                batch.extend_from_slice(s);
            }
            let x = Tensor::from_vec(&[config.n_envs, shape[1], shape[2], shape[3]], batch);
            let (logits, _) = net.forward_both(&x, false);
            let chosen: Vec<usize> = (0..config.n_envs)
                .map(|i| {
                    let row = &logits.data()[i * actions..(i + 1) * actions];
                    let probs = masked_softmax(row, &masks[i]);
                    sample_from(&probs, &mut rng)
                })
                .collect();

            // Synchronous parallel environment stepping (paper
            // Fig. 6), replies in environment order.
            let replies = pool.step_all(&chosen);
            let mut mean_cost = 0.0;
            let mut mean_reward = 0.0;
            for (i, res) in replies.into_iter().enumerate() {
                let reply = res?;
                mean_cost += reply.cost / config.n_envs as f64;
                mean_reward += reply.reward / config.n_envs as f64;
                rollout[i].push(Sample {
                    state: std::mem::take(&mut states[i]),
                    mask: std::mem::take(&mut masks[i]),
                    action: chosen[i],
                    reward: reply.reward as f32,
                });
                states[i] = reply.state;
                masks[i] = reply.mask;
            }
            trajectory.push(mean_cost);
            if hooks.telemetry.is_enabled() {
                hooks.telemetry.emit(
                    Event::new("episode")
                        .with("method", "a2c")
                        .with("step", t as u64)
                        .with("reward", mean_reward)
                        .with("cost", mean_cost),
                );
            }

            if rollout[0].len() >= config.n_step {
                update(&mut net, &mut opt, &mut rollout, &states, config, &shape, actions);
            }
            completed = t + 1;
            hooks.report_progress(completed);
            if hooks.checkpoint_due(completed, config.steps) {
                save_a2c_checkpoint(
                    completed,
                    &rng,
                    &mut net,
                    &opt,
                    &rollout,
                    &states,
                    &masks,
                    &trajectory,
                    pool.snapshot_all(),
                    &cache,
                    hooks,
                    &mut best_saved,
                    true,
                )?;
            }
        }
        Ok(pool.finish())
    })?;

    // Verification sweep on normal completion only: an interrupted
    // run sweeps when its resumption finishes, so resume stays
    // bit-identical to an uninterrupted run. Environment order keeps
    // the shared cache's fill order deterministic.
    if completed == config.steps {
        for env in &mut envs {
            env.verify_screened()?;
        }
    }
    // Shutdown snapshot: rolled on normal completion and on
    // cooperative stop alike, so `resume` always has the exact state
    // the run ended in.
    if hooks.store.is_some() {
        save_a2c_checkpoint(
            completed,
            &rng,
            &mut net,
            &opt,
            &rollout,
            &states,
            &masks,
            &trajectory,
            envs.iter_mut().map(MulEnv::snapshot).collect(),
            &cache,
            hooks,
            &mut best_saved,
            false,
        )?;
    }
    if hooks.telemetry.is_enabled() {
        let (hits, misses) = envs
            .iter()
            .map(|e| e.stats())
            .fold((0, 0), |(h, m), s| (h + s.cache_hits, m + s.cache_misses));
        hooks
            .telemetry
            .emit(Event::new("cache").with("hits", hits as u64).with("misses", misses as u64));
        let nn = NnStats::snapshot().since(nn_before);
        hooks.telemetry.emit(Event::new("nn").with("flops", nn.flops));
        emit_span_events(&hooks.telemetry, &obs.span_stats_since(&spans_before));
    }

    // Pool results across workers. Work counters sum per-worker
    // contributions; distinct states are read once from the shared
    // cache (every worker sees the same set).
    let mut best_cost = f64::INFINITY;
    let mut best = envs[0].best().0.clone();
    let mut pareto_points = Vec::new();
    let mut synth_runs = 0;
    let mut pipeline = PipelineStats::default();
    for env in &envs {
        let (tree, cost) = env.best();
        if cost < best_cost {
            best_cost = cost;
            best = tree.clone();
        }
        pareto_points.extend_from_slice(env.pareto_points());
        let s = env.stats();
        synth_runs += s.synth_runs;
        pipeline.cache_hits += s.cache_hits;
        pipeline.cache_misses += s.cache_misses;
        pipeline.sta.merge(s.sta);
        pipeline.lint.merge(s.lint);
        pipeline.synthesis_calls += s.synthesis_calls;
        pipeline.surrogate_screened += s.surrogate_screened;
        pipeline.surrogate_forced_evals += s.surrogate_forced_evals;
    }
    let states_visited = envs[0].stats().distinct_states;
    pipeline.cache_entries = states_visited;
    pipeline.nn = NnStats::snapshot().since(nn_before);
    Ok(OptimizationOutcome {
        best,
        best_cost,
        trajectory,
        pareto_points,
        states_visited,
        synth_runs,
        pipeline,
    })
}

/// Rolls `latest.ckpt` (and `best.ckpt` when the run improved) with
/// the full synchronized training state at a step boundary.
#[allow(clippy::too_many_arguments)]
fn save_a2c_checkpoint(
    step: usize,
    rng: &StdRng,
    net: &mut PolicyValueNet,
    opt: &Adam,
    rollout: &[Vec<Sample>],
    states: &[Vec<f32>],
    masks: &[Vec<bool>],
    trajectory: &[f64],
    env_snaps: Vec<EnvSnapshot>,
    cache: &EvalCache,
    hooks: &TrainHooks,
    best_saved: &mut f64,
    periodic: bool,
) -> Result<(), RlMulError> {
    let Some(store) = &hooks.store else { return Ok(()) };
    let (adam_t, adam_m, adam_v) = opt.state();
    let snap = A2cSnapshot {
        step,
        rng: rng.state(),
        net: snapshot_net(&mut NetAsLayer(net)),
        adam_t,
        adam_m: adam_m.to_vec(),
        adam_v: adam_v.to_vec(),
        rollout: rollout.to_vec(),
        states: states.to_vec(),
        masks: masks.to_vec(),
        trajectory: trajectory.to_vec(),
        envs: env_snaps,
        cache: cache.export_entries(),
    };
    store.save_latest(&snap)?;
    if periodic && hooks.keep_history {
        store.save_step(step, &snap)?;
    }
    let best_cost = snap.best_cost();
    if best_cost < *best_saved {
        store.save_best(&snap)?;
        *best_saved = best_cost;
    }
    hooks.telemetry.emit(
        Event::new("checkpoint")
            .with("step", step as u64)
            .with("path", store.latest_path().display().to_string()),
    );
    Ok(())
}

fn sample_from<R: Rng + ?Sized>(probs: &[f32], rng: &mut R) -> usize {
    let mut u: f32 = rng.gen();
    for (i, &p) in probs.iter().enumerate() {
        u -= p;
        if u <= 0.0 {
            return i;
        }
    }
    probs.iter().rposition(|&p| p > 0.0).expect("probabilities sum to 1")
}

/// One synchronous update over the collected `n_step` rollout
/// (paper Eqs. 16–19).
fn update(
    net: &mut PolicyValueNet,
    opt: &mut Adam,
    rollout: &mut [Vec<Sample>],
    bootstrap_states: &[Vec<f32>],
    config: &A2cConfig,
    shape: &[usize; 4],
    actions: usize,
) {
    let n_envs = rollout.len();
    let volume: usize = shape[1] * shape[2] * shape[3];
    // Bootstrap values v(s_{t+k}) for every worker.
    let mut tail = Vec::with_capacity(n_envs * volume);
    for s in bootstrap_states {
        tail.extend_from_slice(s);
    }
    let xt = Tensor::from_vec(&[n_envs, shape[1], shape[2], shape[3]], tail);
    let (_, v_tail) = net.forward_both(&xt, false);

    // k-step discounted returns per worker.
    let mut samples: Vec<Sample> = Vec::new();
    let mut returns: Vec<f32> = Vec::new();
    for (i, run) in rollout.iter_mut().enumerate() {
        let mut ret = v_tail.data()[i];
        let mut local: Vec<(Sample, f32)> = Vec::with_capacity(run.len());
        for s in run.drain(..).rev() {
            ret = s.reward + config.gamma * ret;
            local.push((s, ret));
        }
        for (s, r) in local.into_iter().rev() {
            samples.push(s);
            returns.push(r);
        }
    }
    let b = samples.len();
    let mut batch = Vec::with_capacity(b * volume);
    for s in &samples {
        batch.extend_from_slice(&s.state);
    }
    let x = Tensor::from_vec(&[b, shape[1], shape[2], shape[3]], batch);
    let adapter_zero = |net: &mut PolicyValueNet, opt: &mut Adam| {
        let mut a = NetAsLayer(net);
        opt.zero_grad(&mut a);
    };
    adapter_zero(net, opt);
    let (logits, values) = net.forward_both(&x, true);

    let mut grad_logits = Tensor::zeros(&[b, actions]);
    let mut grad_values = Tensor::zeros(&[b, 1]);
    for (i, s) in samples.iter().enumerate() {
        let row = &logits.data()[i * actions..(i + 1) * actions];
        let probs = masked_softmax(row, &s.mask);
        let v = values.data()[i];
        let advantage = returns[i] - v;
        let h = entropy(&probs);
        let gl = &mut grad_logits.data_mut()[i * actions..(i + 1) * actions];
        for j in 0..actions {
            if !s.mask[j] {
                continue;
            }
            // Policy-gradient (ascent ⇒ negative loss gradient) …
            let indicator = if j == s.action { 1.0 } else { 0.0 };
            let mut g = (probs[j] - indicator) * advantage;
            // … plus entropy-bonus gradient.
            if probs[j] > 0.0 {
                g += config.entropy_coef * probs[j] * (probs[j].ln() + h);
            }
            gl[j] = g / b as f32;
        }
        grad_values.data_mut()[i] = 2.0 * config.value_coef * (v - returns[i]) / b as f32;
    }
    net.backward_both(&grad_logits, &grad_values);
    {
        let mut a = NetAsLayer(net);
        clip_grad_norm(&mut a, config.grad_clip);
        opt.step(&mut a);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlmul_ct::PpgKind;

    fn tiny() -> (EnvConfig, A2cConfig) {
        let env = EnvConfig::new(4, PpgKind::And);
        let a2c = A2cConfig {
            steps: 10,
            n_envs: 2,
            n_step: 3,
            trunk: TrunkConfig { in_channels: 2, channels: vec![4, 8], blocks_per_stage: 1 },
            ..Default::default()
        };
        (env, a2c)
    }

    #[test]
    fn a2c_runs_with_parallel_workers() {
        let (env_cfg, cfg) = tiny();
        let out = train_a2c(&env_cfg, &cfg).unwrap();
        assert_eq!(out.trajectory.len(), 10);
        out.best.check_legal().unwrap();
        // Two workers each synthesize at least their initial state.
        assert!(out.states_visited >= 2);
    }

    #[test]
    fn a2c_is_deterministic_given_seed() {
        let (env_cfg, cfg) = tiny();
        let a = train_a2c(&env_cfg, &cfg).unwrap().trajectory;
        let b = train_a2c(&env_cfg, &cfg).unwrap().trajectory;
        assert_eq!(a, b);
    }

    #[test]
    fn single_env_serial_fallback_runs() {
        let (env_cfg, mut cfg) = tiny();
        cfg.n_envs = 1;
        cfg.steps = 4;
        let out = train_a2c(&env_cfg, &cfg).unwrap();
        assert_eq!(out.trajectory.len(), 4);
    }

    #[test]
    fn workers_share_one_evaluation_cache() {
        let (env_cfg, cfg) = tiny();
        let out = train_a2c(&env_cfg, &cfg).unwrap();
        // The second worker's anchor and initial-state evaluations
        // are cache hits against the first worker's, so a shared run
        // always records hits — i.e. strictly fewer synthesis runs
        // than the same workers with private caches.
        assert!(out.pipeline.cache_hits >= 2, "hits = {}", out.pipeline.cache_hits);
        assert_eq!(out.pipeline.cache_misses, out.states_visited);
    }

    #[test]
    fn zero_workers_is_invalid() {
        let (env_cfg, mut cfg) = tiny();
        cfg.n_envs = 0;
        assert!(train_a2c(&env_cfg, &cfg).is_err());
    }

    #[test]
    fn policy_value_net_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = TrunkConfig { in_channels: 2, channels: vec![4], blocks_per_stage: 1 };
        let mut net = PolicyValueNet::new(&cfg, 16, &mut rng);
        let x = Tensor::zeros(&[3, 2, 8, 8]);
        let (logits, values) = net.forward_both(&x, false);
        assert_eq!(logits.shape(), &[3, 16]);
        assert_eq!(values.shape(), &[3, 1]);
    }
}
