use rlmul_ckpt::CkptError;
use rlmul_ct::CtError;
use rlmul_rtl::RtlError;
use rlmul_synth::SynthError;
use std::error::Error;
use std::fmt;

/// Errors produced by the RL-MUL optimization framework.
#[derive(Debug)]
#[non_exhaustive]
pub enum RlMulError {
    /// Compressor-tree state error.
    Ct(CtError),
    /// RTL elaboration error.
    Rtl(RtlError),
    /// Synthesis error.
    Synth(SynthError),
    /// A configuration value is out of range.
    InvalidConfig {
        /// Human-readable description.
        what: String,
    },
    /// Snapshot write, read or restore error.
    Ckpt(CkptError),
}

impl fmt::Display for RlMulError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RlMulError::Ct(e) => write!(f, "compressor tree: {e}"),
            RlMulError::Rtl(e) => write!(f, "rtl elaboration: {e}"),
            RlMulError::Synth(e) => write!(f, "synthesis: {e}"),
            RlMulError::InvalidConfig { what } => write!(f, "invalid configuration: {what}"),
            RlMulError::Ckpt(e) => write!(f, "checkpoint: {e}"),
        }
    }
}

impl Error for RlMulError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RlMulError::Ct(e) => Some(e),
            RlMulError::Rtl(e) => Some(e),
            RlMulError::Synth(e) => Some(e),
            RlMulError::InvalidConfig { .. } => None,
            RlMulError::Ckpt(e) => Some(e),
        }
    }
}

impl From<CkptError> for RlMulError {
    fn from(e: CkptError) -> Self {
        RlMulError::Ckpt(e)
    }
}

impl From<CtError> for RlMulError {
    fn from(e: CtError) -> Self {
        RlMulError::Ct(e)
    }
}

impl From<RtlError> for RlMulError {
    fn from(e: RtlError) -> Self {
        RlMulError::Rtl(e)
    }
}

impl From<SynthError> for RlMulError {
    fn from(e: SynthError) -> Self {
        RlMulError::Synth(e)
    }
}
