//! The Pareto-driven reward (paper Section III-E with the
//! objective-space reduction of Section IV-B).
//!
//! Each state is synthesized under several delay constraints; the
//! scalar cost is the weighted sum of the resulting areas and delays
//! (Eq. 20 — power is dropped because it correlates strongly with
//! area, see Fig. 7), and the step reward is the cost decrease
//! (Eq. 10). Sweeping the `(w_a, w_d)` weights steers the agent
//! toward area-, delay- or trade-off-optimal corners of the Pareto
//! front.

use rlmul_synth::SynthesisReport;

/// Objective weights of the cost function. The paper's full Eq. 9
/// weights area, delay *and* power; Section IV-B drops the power term
/// after observing its strong correlation with area (Fig. 7), so
/// `power` defaults to 0 in every preset. Set it to study the
/// unreduced objective (see the `ablation_reward` harness).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostWeights {
    /// Area weight `w_a ∈ [0, 1]`.
    pub area: f64,
    /// Delay weight `w_d ∈ [0, 1]`.
    pub delay: f64,
    /// Power weight `w_p ∈ [0, 1]` (0 = the paper's reduced Eq. 20).
    pub power: f64,
}

impl CostWeights {
    /// Area-dominant preference.
    pub const AREA: CostWeights = CostWeights { area: 1.0, delay: 0.1, power: 0.0 };
    /// Delay-dominant preference.
    pub const TIMING: CostWeights = CostWeights { area: 0.1, delay: 1.0, power: 0.0 };
    /// Balanced trade-off preference.
    pub const TRADE_OFF: CostWeights = CostWeights { area: 0.5, delay: 0.5, power: 0.0 };

    /// Raw weighted cost over the synthesis runs of one design:
    /// `w_a Σ area_i + w_d Σ delay_i + w_p Σ power_i`. Area is
    /// expressed in units of 100 µm² and power in units of 0.1 mW so
    /// all objectives contribute at comparable magnitude, as the
    /// paper's normalized weighting implies.
    pub fn cost(&self, reports: &[SynthesisReport]) -> f64 {
        let area: f64 = reports.iter().map(|r| r.area_um2).sum();
        let delay: f64 = reports.iter().map(|r| r.delay_ns).sum();
        let power: f64 = reports.iter().map(|r| r.power_mw).sum();
        self.area * area / 100.0 + self.delay * delay + self.power * power / 0.1
    }
}

impl Default for CostWeights {
    fn default() -> Self {
        CostWeights::TRADE_OFF
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(area: f64, delay: f64) -> SynthesisReport {
        SynthesisReport {
            area_um2: area,
            delay_ns: delay,
            power_mw: 0.0,
            target_delay_ns: None,
            met_target: true,
            drive_histogram: [0, 0, 0],
            sizing_moves: 0,
            num_cells: 0,
            sta: rlmul_synth::StaStats::default(),
        }
    }

    #[test]
    fn cost_is_weighted_sum_over_constraints() {
        let reports = vec![report(400.0, 1.0), report(500.0, 0.8)];
        let w = CostWeights { area: 1.0, delay: 0.0, power: 0.0 };
        assert!((w.cost(&reports) - 9.0).abs() < 1e-12);
        let w = CostWeights { area: 0.0, delay: 1.0, power: 0.0 };
        assert!((w.cost(&reports) - 1.8).abs() < 1e-12);
    }

    #[test]
    fn presets_prefer_their_objective() {
        let small_slow = vec![report(300.0, 2.0)];
        let big_fast = vec![report(600.0, 1.0)];
        assert!(CostWeights::AREA.cost(&small_slow) < CostWeights::AREA.cost(&big_fast));
        assert!(CostWeights::TIMING.cost(&big_fast) < CostWeights::TIMING.cost(&small_slow));
    }

    #[test]
    fn power_term_contributes_when_weighted() {
        let mut r = report(400.0, 1.0);
        r.power_mw = 0.3;
        let reduced = CostWeights::TRADE_OFF;
        let full = CostWeights { power: 0.5, ..CostWeights::TRADE_OFF };
        let reports = vec![r];
        assert!(full.cost(&reports) > reduced.cost(&reports));
        assert!((full.cost(&reports) - reduced.cost(&reports) - 0.5 * 0.3 / 0.1).abs() < 1e-12);
    }
}
