//! [`Record`] implementations for the crate's snapshot types.
//!
//! The snapshot structs themselves live next to the code that fills
//! them ([`DqnSnapshot`] in `dqn`, [`A2cSnapshot`] in `a2c`,
//! [`SaSnapshot`] in `sa_driver`, [`EnvSnapshot`] in `env`); this
//! module centralizes their wire formats so the full layout of a
//! checkpoint file is reviewable in one place. Fields encode in
//! declaration order; every container carries a length prefix, and
//! [`Record::from_bytes`] rejects trailing bytes, so encoder/decoder
//! drift fails loudly rather than silently misaligning a resume.

use crate::a2c::{A2cSnapshot, Sample};
use crate::cache::CacheKey;
use crate::dqn::{DqnSnapshot, Transition};
use crate::env::{EnvSnapshot, Evaluation};
use crate::sa_driver::SaSnapshot;
use crate::surrogate::SurrogateSnapshot;
use rlmul_baselines::SaParts;
use rlmul_ckpt::{CkptError, Decoder, Encoder, Record};
use rlmul_ct::{CompressorTree, PpgKind};
use rlmul_nn::{NetSnapshot, Tensor};
use rlmul_synth::SynthesisReport;

impl Record for CacheKey {
    fn encode(&self, enc: &mut Encoder) {
        self.counts.encode(enc);
        self.kind.encode(enc);
        enc.put_u64(self.context);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CkptError> {
        Ok(CacheKey {
            counts: Vec::decode(dec)?,
            kind: PpgKind::decode(dec)?,
            context: dec.get_u64()?,
        })
    }
}

impl Record for Evaluation {
    fn encode(&self, enc: &mut Encoder) {
        self.reports.encode(enc);
        enc.put_f64(self.cost);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CkptError> {
        Ok(Evaluation { reports: Vec::<SynthesisReport>::decode(dec)?, cost: dec.get_f64()? })
    }
}

impl Record for EnvSnapshot {
    fn encode(&self, enc: &mut Encoder) {
        self.current.encode(enc);
        enc.put_f64(self.current_cost);
        self.best.encode(enc);
        enc.put_f64(self.best_cost);
        enc.put_usize(self.steps_taken);
        self.pareto_points.encode(enc);
        self.delay_targets.encode(enc);
        self.surrogate.encode(enc);
        self.watch.encode(enc);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CkptError> {
        Ok(EnvSnapshot {
            current: CompressorTree::decode(dec)?,
            current_cost: dec.get_f64()?,
            best: CompressorTree::decode(dec)?,
            best_cost: dec.get_f64()?,
            steps_taken: dec.get_usize()?,
            pareto_points: Vec::decode(dec)?,
            delay_targets: Vec::decode(dec)?,
            surrogate: Option::decode(dec)?,
            watch: Vec::decode(dec)?,
        })
    }
}

impl Record for SurrogateSnapshot {
    fn encode(&self, enc: &mut Encoder) {
        self.net.encode(enc);
        enc.put_i64(self.adam_t);
        self.adam_m.encode(enc);
        self.adam_v.encode(enc);
        self.rng.encode(enc);
        self.buf_x.encode(enc);
        self.buf_y.encode(enc);
        enc.put_usize(self.write_pos);
        self.seen.encode(enc);
        self.norm.encode(enc);
        enc.put_usize(self.observed);
        enc.put_usize(self.since_real);
        enc.put_f64(self.best_real_cost);
        self.mae_sums.encode(enc);
        enc.put_u64(self.mae_count);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CkptError> {
        Ok(SurrogateSnapshot {
            net: NetSnapshot::decode(dec)?,
            adam_t: dec.get_i64()?,
            adam_m: Vec::<Tensor>::decode(dec)?,
            adam_v: Vec::<Tensor>::decode(dec)?,
            rng: <[u64; 4]>::decode(dec)?,
            buf_x: Vec::decode(dec)?,
            buf_y: Vec::decode(dec)?,
            write_pos: dec.get_usize()?,
            seen: Vec::decode(dec)?,
            norm: Vec::decode(dec)?,
            observed: dec.get_usize()?,
            since_real: dec.get_usize()?,
            best_real_cost: dec.get_f64()?,
            mae_sums: Vec::decode(dec)?,
            mae_count: dec.get_u64()?,
        })
    }
}

impl Record for Transition {
    fn encode(&self, enc: &mut Encoder) {
        self.state.encode(enc);
        enc.put_usize(self.action);
        enc.put_f32(self.reward);
        self.next_state.encode(enc);
        self.next_mask.encode(enc);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CkptError> {
        Ok(Transition {
            state: Vec::decode(dec)?,
            action: dec.get_usize()?,
            reward: dec.get_f32()?,
            next_state: Vec::decode(dec)?,
            next_mask: Vec::decode(dec)?,
        })
    }
}

impl Record for DqnSnapshot {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_usize(self.step);
        self.rng.encode(enc);
        self.net.encode(enc);
        self.opt.encode(enc);
        self.replay.encode(enc);
        self.trajectory.encode(enc);
        self.state.encode(enc);
        self.env.encode(enc);
        self.cache.encode(enc);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CkptError> {
        Ok(DqnSnapshot {
            step: dec.get_usize()?,
            rng: <[u64; 4]>::decode(dec)?,
            net: NetSnapshot::decode(dec)?,
            opt: Vec::<Tensor>::decode(dec)?,
            replay: Vec::decode(dec)?,
            trajectory: Vec::decode(dec)?,
            state: Vec::decode(dec)?,
            env: EnvSnapshot::decode(dec)?,
            cache: Vec::decode(dec)?,
        })
    }
}

impl Record for Sample {
    fn encode(&self, enc: &mut Encoder) {
        self.state.encode(enc);
        self.mask.encode(enc);
        enc.put_usize(self.action);
        enc.put_f32(self.reward);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CkptError> {
        Ok(Sample {
            state: Vec::decode(dec)?,
            mask: Vec::decode(dec)?,
            action: dec.get_usize()?,
            reward: dec.get_f32()?,
        })
    }
}

impl Record for A2cSnapshot {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_usize(self.step);
        self.rng.encode(enc);
        self.net.encode(enc);
        enc.put_i64(self.adam_t);
        self.adam_m.encode(enc);
        self.adam_v.encode(enc);
        self.rollout.encode(enc);
        self.states.encode(enc);
        self.masks.encode(enc);
        self.trajectory.encode(enc);
        self.envs.encode(enc);
        self.cache.encode(enc);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CkptError> {
        Ok(A2cSnapshot {
            step: dec.get_usize()?,
            rng: <[u64; 4]>::decode(dec)?,
            net: NetSnapshot::decode(dec)?,
            adam_t: dec.get_i64()?,
            adam_m: Vec::<Tensor>::decode(dec)?,
            adam_v: Vec::<Tensor>::decode(dec)?,
            rollout: Vec::decode(dec)?,
            states: Vec::decode(dec)?,
            masks: Vec::decode(dec)?,
            trajectory: Vec::decode(dec)?,
            envs: Vec::decode(dec)?,
            cache: Vec::decode(dec)?,
        })
    }
}

impl Record for SaSnapshot {
    fn encode(&self, enc: &mut Encoder) {
        self.rng.encode(enc);
        // SaParts is a foreign type (rlmul-baselines), so its fields
        // are framed here rather than behind its own Record impl.
        self.parts.current.encode(enc);
        enc.put_f64(self.parts.current_cost);
        self.parts.best.encode(enc);
        enc.put_f64(self.parts.best_cost);
        enc.put_f64(self.parts.temp);
        self.parts.trajectory.encode(enc);
        enc.put_usize(self.parts.accepted);
        self.env.encode(enc);
        self.cache.encode(enc);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CkptError> {
        Ok(SaSnapshot {
            rng: <[u64; 4]>::decode(dec)?,
            parts: SaParts {
                current: CompressorTree::decode(dec)?,
                current_cost: dec.get_f64()?,
                best: CompressorTree::decode(dec)?,
                best_cost: dec.get_f64()?,
                temp: dec.get_f64()?,
                trajectory: Vec::decode(dec)?,
                accepted: dec.get_usize()?,
            },
            env: EnvSnapshot::decode(dec)?,
            cache: Vec::decode(dec)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlmul_synth::{StaStats, SynthesisReport};

    fn tree() -> CompressorTree {
        CompressorTree::dadda(4, PpgKind::And).unwrap()
    }

    fn report(area: f64) -> SynthesisReport {
        SynthesisReport {
            area_um2: area,
            delay_ns: 0.875,
            power_mw: 0.25,
            target_delay_ns: Some(1.0),
            met_target: true,
            drive_histogram: [3, 2, 1],
            sizing_moves: 4,
            num_cells: 55,
            sta: StaStats::default(),
        }
    }

    fn env_snapshot() -> EnvSnapshot {
        EnvSnapshot {
            current: tree(),
            current_cost: 12.5,
            best: tree(),
            best_cost: 11.25,
            steps_taken: 9,
            pareto_points: vec![(100.0, 1.5), (90.0, 1.75)],
            delay_targets: vec![0.7, 0.85, 1.0, 1.15],
            surrogate: None,
            watch: vec![(0.015625, vec![(101.5, 1.25), (95.25, 1.5)], tree())],
        }
    }

    #[test]
    fn cache_entries_round_trip_bit_exactly() {
        let entry = (
            CacheKey { counts: vec![(3, 1), (0, 2)], kind: PpgKind::Mbe, context: 0xdead_beef },
            Evaluation { reports: vec![report(321.125), report(290.5)], cost: -0.0 },
        );
        let back = <(CacheKey, Evaluation)>::from_bytes(&entry.to_bytes()).unwrap();
        assert_eq!(back.0, entry.0);
        assert_eq!(back.1.cost.to_bits(), entry.1.cost.to_bits());
        assert_eq!(back.1.reports.len(), 2);
        assert_eq!(back.1.reports[0].area_um2.to_bits(), 321.125f64.to_bits());
    }

    #[test]
    fn env_snapshot_round_trips() {
        let snap = env_snapshot();
        let back = EnvSnapshot::from_bytes(&snap.to_bytes()).unwrap();
        assert_eq!(back.current, snap.current);
        assert_eq!(back.best_cost.to_bits(), snap.best_cost.to_bits());
        assert_eq!(back.steps_taken, 9);
        assert_eq!(back.pareto_points, snap.pareto_points);
        assert_eq!(back.delay_targets, snap.delay_targets);
    }

    #[test]
    fn transition_and_sample_round_trip() {
        let t = Transition {
            state: vec![0.5, -1.5],
            action: 17,
            reward: -0.125,
            next_state: vec![1.0, 2.0],
            next_mask: vec![true, false, true],
        };
        let back = Transition::from_bytes(&t.to_bytes()).unwrap();
        assert_eq!(back.state, t.state);
        assert_eq!(back.action, 17);
        assert_eq!(back.next_mask, t.next_mask);

        let s = Sample { state: vec![0.25], mask: vec![false, true], action: 3, reward: 2.5 };
        let back = Sample::from_bytes(&s.to_bytes()).unwrap();
        assert_eq!(back.mask, s.mask);
        assert_eq!(back.reward, 2.5);
    }

    #[test]
    fn truncated_snapshot_is_rejected() {
        let snap = env_snapshot();
        let bytes = snap.to_bytes();
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                EnvSnapshot::from_bytes(&bytes[..cut]).is_err(),
                "truncation at {cut} must not decode"
            );
        }
        // Appended garbage is trailing bytes, not a silent success.
        let mut long = bytes.clone();
        long.push(0);
        assert!(EnvSnapshot::from_bytes(&long).is_err());
    }

    #[test]
    fn sa_snapshot_round_trips_through_parts() {
        let snap = SaSnapshot {
            rng: [1, 2, 3, 4],
            parts: SaParts {
                current: tree(),
                current_cost: 5.5,
                best: tree(),
                best_cost: 5.25,
                temp: 42.0,
                trajectory: vec![6.0, 5.5],
                accepted: 1,
            },
            env: env_snapshot(),
            cache: vec![(
                CacheKey { counts: vec![(1, 1)], kind: PpgKind::And, context: 3 },
                Evaluation { reports: vec![report(10.0)], cost: 10.0 },
            )],
        };
        let back = SaSnapshot::from_bytes(&snap.to_bytes()).unwrap();
        assert_eq!(back.rng, snap.rng);
        assert_eq!(back.parts.trajectory, snap.parts.trajectory);
        assert_eq!(back.parts.temp.to_bits(), snap.parts.temp.to_bits());
        assert_eq!(back.cache.len(), 1);
        assert_eq!(back.env.steps_taken, snap.env.steps_taken);
    }
}
