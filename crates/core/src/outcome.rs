//! Common result type of every optimizer (RL-MUL, RL-MUL-E, SA, …).

use rlmul_ct::CompressorTree;

/// What an optimization run produced.
#[derive(Debug, Clone)]
pub struct OptimizationOutcome {
    /// Lowest-cost structure found.
    pub best: CompressorTree,
    /// Its weighted cost (paper Eq. 20).
    pub best_cost: f64,
    /// Cost of the *current* state after every step — the trajectory
    /// the paper plots in Fig. 12.
    pub trajectory: Vec<f64>,
    /// Every `(area µm², delay ns)` point synthesized during the run
    /// (raw material for Pareto fronts, Figs. 9–11).
    pub pareto_points: Vec<(f64, f64)>,
    /// Distinct states evaluated.
    pub states_visited: usize,
    /// Total synthesis runs.
    pub synth_runs: usize,
}
