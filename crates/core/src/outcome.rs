//! Common result type of every optimizer (RL-MUL, RL-MUL-E, SA, …).

use rlmul_ct::CompressorTree;
pub use rlmul_nn::NnStats;
pub use rlmul_rtl::LintStats;
use rlmul_synth::StaStats;

/// Evaluation-pipeline counters pooled over a whole optimization run:
/// how much synthesis was performed, how much the shared cache
/// avoided, how much timing work the incremental STA engine saved,
/// and how much dense-kernel work the agent networks performed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Evaluations answered from the shared cache.
    pub cache_hits: usize,
    /// Evaluations that had to synthesize.
    pub cache_misses: usize,
    /// Finished entries in the shared cache at the end of the run.
    pub cache_entries: usize,
    /// Timing-engine work counters summed over all synthesis runs.
    pub sta: StaStats,
    /// Agent-network dense-kernel counters (zero for searches that
    /// train no network, e.g. simulated annealing).
    pub nn: NnStats,
    /// Structural-lint gate counters (every netlist is linted before
    /// it reaches synthesis).
    pub lint: LintStats,
    /// Real synthesis pipeline invocations (the number the surrogate
    /// evaluator exists to shrink).
    pub synthesis_calls: usize,
    /// Evaluations answered by the online surrogate instead of
    /// synthesis (zero with the surrogate disabled).
    pub surrogate_screened: usize,
    /// Real evaluations forced by the surrogate honesty schedule.
    pub surrogate_forced_evals: usize,
}

impl PipelineStats {
    /// One-line human-readable rendering for logs and bench reports.
    /// Deterministic for a seeded run (the nn part reports work
    /// counters, not wall time), so seeded CLI output stays
    /// byte-identical across reruns.
    pub fn render(&self) -> String {
        format!(
            "cache {} hits / {} misses ({} states); {} synth calls, \
             {} screened + {} forced by surrogate; sta {} full + {} incremental passes, \
             {} full / {} incremental gate visits; {}; {}",
            self.cache_hits,
            self.cache_misses,
            self.cache_entries,
            self.synthesis_calls,
            self.surrogate_screened,
            self.surrogate_forced_evals,
            self.sta.full_passes,
            self.sta.incremental_passes,
            self.sta.full_gate_visits,
            self.sta.incremental_gate_visits,
            self.nn.render_work(),
            self.lint.render(),
        )
    }
}

/// What an optimization run produced.
#[derive(Debug, Clone)]
pub struct OptimizationOutcome {
    /// Lowest-cost structure found.
    pub best: CompressorTree,
    /// Its weighted cost (paper Eq. 20).
    pub best_cost: f64,
    /// Cost of the *current* state after every step — the trajectory
    /// the paper plots in Fig. 12.
    pub trajectory: Vec<f64>,
    /// Every `(area µm², delay ns)` point synthesized during the run
    /// (raw material for Pareto fronts, Figs. 9–11).
    pub pareto_points: Vec<(f64, f64)>,
    /// Distinct states evaluated.
    pub states_visited: usize,
    /// Total synthesis runs.
    pub synth_runs: usize,
    /// Cache and timing-engine counters for the run.
    pub pipeline: PipelineStats,
}
