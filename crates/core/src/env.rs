//! The RL-MUL environment: compressor-tree states, masked actions,
//! and a synthesis-backed Pareto-driven reward (paper Fig. 3).

use crate::cache::{context_fingerprint, CacheKeyRef, EvalCache, Lookup};
use crate::reward::CostWeights;
use crate::surrogate::{state_fingerprint, Surrogate, SurrogateConfig, SurrogateSnapshot};
use crate::RlMulError;
use rlmul_ct::{Action, CompressorTree, PpgKind};
use rlmul_nn::Tensor;
use rlmul_obs::TraceCtx;
use rlmul_rtl::{IncrementalMultiplier, LintStats, MultiplierNetlist};
use rlmul_synth::{IncrementalSynthesis, StaStats, SynthesisOptions, SynthesisReport, Synthesizer};
use rlmul_telemetry::{Event, TelemetrySink};
use std::sync::Arc;
// check: allow(wall-clock) import feeds the timing-stats sites below
use std::time::Instant;

/// Which legacy structure seeds the search (state `s_0`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InitialStructure {
    /// Wallace tree (the paper's initial state).
    #[default]
    Wallace,
    /// Dadda tree.
    Dadda,
}

/// Search-space pruning on the reduction depth (paper Section IV-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StagePruning {
    /// Forbid actions exceeding the initial depth plus one stage.
    #[default]
    Auto,
    /// Forbid actions exceeding an explicit depth.
    Limit(usize),
    /// No depth pruning.
    Off,
}

/// How the evaluation pipeline turns a compressor-tree state into
/// synthesis reports on a cache miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PipelineMode {
    /// Re-elaborate only the columns an action touched
    /// ([`IncrementalMultiplier`]), lint just the delta, and patch the
    /// mapped-netlist connectivity plus the STA baseline downstream
    /// ([`IncrementalSynthesis`]). Produces bit-identical PPA numbers
    /// to a full rebuild (debug builds assert this on every miss) in
    /// time proportional to the edit.
    #[default]
    Incremental,
    /// Elaborate, lint, map, and size from scratch on every miss —
    /// the reference oracle the incremental path is checked against.
    FullRebuild,
}

/// Environment configuration.
#[derive(Debug, Clone)]
pub struct EnvConfig {
    /// Operand width `N`.
    pub bits: usize,
    /// Partial-product scheme (including merged-MAC kinds).
    pub kind: PpgKind,
    /// Reward weights (paper Eq. 20).
    pub weights: CostWeights,
    /// Explicit synthesis delay targets in ns; empty derives four
    /// targets from the initial design (paper uses four constraints).
    pub delay_targets: Vec<f64>,
    /// Depth pruning policy.
    pub pruning: StagePruning,
    /// Stage-axis padding of the state tensor; 0 derives it from the
    /// pruning limit.
    pub tensor_stages: usize,
    /// Initial structure.
    pub initial: InitialStructure,
    /// Sizing move budget per synthesis run.
    pub max_upsizes: usize,
    /// Miss-path evaluation pipeline (incremental by default).
    pub pipeline: PipelineMode,
    /// Online surrogate evaluator (disabled by default; the disabled
    /// path is bit-identical to an environment without one).
    pub surrogate: SurrogateConfig,
}

impl EnvConfig {
    /// A ready-to-train configuration for `bits`-bit designs.
    pub fn new(bits: usize, kind: PpgKind) -> Self {
        EnvConfig {
            bits,
            kind,
            weights: CostWeights::default(),
            delay_targets: Vec::new(),
            pruning: StagePruning::default(),
            tensor_stages: 0,
            initial: InitialStructure::default(),
            max_upsizes: 800,
            pipeline: PipelineMode::default(),
            surrogate: SurrogateConfig::default(),
        }
    }
}

/// One synthesized state evaluation (shared via [`Arc`] through the
/// cross-environment [`EvalCache`]).
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// One synthesis report per delay constraint.
    pub reports: Vec<SynthesisReport>,
    /// Scalar weighted cost (paper Eq. 20).
    pub cost: f64,
}

/// Evaluation-pipeline counters for one environment.
///
/// `synth_runs`, `cache_hits`, `cache_misses`, and `sta` count work
/// performed (or avoided) *by this environment*; `distinct_states`
/// reads the shared cache, so environments sharing one [`EvalCache`]
/// report the same value.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EnvStats {
    /// Environment steps taken.
    pub steps: usize,
    /// Finished entries in the (possibly shared) evaluation cache.
    pub distinct_states: usize,
    /// Synthesis runs this environment performed itself.
    pub synth_runs: usize,
    /// Evaluations answered from the cache.
    pub cache_hits: usize,
    /// Evaluations this environment had to synthesize.
    pub cache_misses: usize,
    /// Timing-engine work done by this environment's synthesis runs.
    pub sta: StaStats,
    /// Structural-lint gate counters (one check per elaboration).
    pub lint: LintStats,
    /// Real synthesis pipeline invocations (cache misses that ran the
    /// synthesizer). Kept distinct from `synth_runs` — which counts
    /// per-delay-target runs — so the surrogate bench reads one
    /// unambiguous call count.
    pub synthesis_calls: usize,
    /// Evaluations answered by the surrogate instead of synthesis.
    pub surrogate_screened: usize,
    /// Real evaluations forced by the surrogate honesty schedule.
    pub surrogate_forced_evals: usize,
}

/// Result of one environment step.
#[derive(Debug, Clone)]
pub struct StepOutcome {
    /// Reward `r_t = cost_t − cost_{t+1}` (paper Eq. 10).
    pub reward: f64,
    /// Cost of the new state.
    pub cost: f64,
    /// Evaluation of the new state.
    pub evaluation: Arc<Evaluation>,
}

/// The multiplier-optimization environment.
///
/// ```no_run
/// use rlmul_core::{EnvConfig, MulEnv};
/// use rlmul_ct::PpgKind;
///
/// let mut env = MulEnv::new(EnvConfig::new(8, PpgKind::And))?;
/// let mask = env.action_mask();
/// let action = mask.iter().position(|&ok| ok).expect("some legal action");
/// let outcome = env.step(action)?;
/// println!("reward {}", outcome.reward);
/// # Ok::<(), rlmul_core::RlMulError>(())
/// ```
pub struct MulEnv {
    config: EnvConfig,
    synthesizer: Synthesizer,
    initial: CompressorTree,
    current: CompressorTree,
    current_cost: f64,
    delay_targets: Vec<f64>,
    stage_limit: usize,
    tensor_stages: usize,
    cache: EvalCache,
    /// Incremental miss-path state; `None` in [`PipelineMode::FullRebuild`].
    inc: Option<IncPipeline>,
    /// Context fingerprint for multi-target evaluations.
    eval_context: u64,
    pareto_points: Vec<(f64, f64)>,
    best: (f64, CompressorTree),
    steps_taken: usize,
    counters: PipelineCounters,
    sink: TelemetrySink,
    /// Per-job trace context for cache/surrogate/synthesis events;
    /// disabled (one branch per emit) unless a supervisor installs one
    /// via [`MulEnv::set_trace`].
    trace: TraceCtx,
    /// Online learned evaluator; `None` unless enabled in the config.
    surrogate: Option<Surrogate>,
    /// Per-step scratch (satellite: no fresh `Vec` per mask query or
    /// candidate encoding on the hot path).
    scratch_mask: Vec<bool>,
    scratch_dense: Vec<f32>,
    /// Screened states whose predictions landed nearest the Pareto
    /// front, sorted by descending screen-time nearness, each with
    /// its predicted per-constraint `(area, delay)` points; the
    /// end-of-run verification sweep ([`MulEnv::verify_screened`])
    /// re-scores them against the final front and real-evaluates the
    /// still-plausible extenders.
    watch: Vec<WatchEntry>,
}

/// A verification-watchlist entry: the screen-time front-nearness
/// score, the surrogate's predicted per-constraint `(area, delay)`
/// points, and the screened state itself.
pub(crate) type WatchEntry = (f64, Vec<(f64, f64)>, CompressorTree);

/// The mutable state of a [`MulEnv`] at a step boundary — everything
/// [`MulEnv::restore`] needs to continue a run bit-identically.
/// Produced by [`MulEnv::snapshot`]; serialized inside the agents'
/// training snapshots.
#[derive(Debug, Clone)]
pub struct EnvSnapshot {
    pub(crate) current: CompressorTree,
    pub(crate) current_cost: f64,
    pub(crate) best: CompressorTree,
    pub(crate) best_cost: f64,
    pub(crate) steps_taken: usize,
    pub(crate) pareto_points: Vec<(f64, f64)>,
    pub(crate) delay_targets: Vec<f64>,
    /// Surrogate state; `None` when the run had no surrogate.
    pub(crate) surrogate: Option<SurrogateSnapshot>,
    /// Verification-sweep watchlist (empty when the run had no
    /// surrogate).
    pub(crate) watch: Vec<WatchEntry>,
}

impl EnvSnapshot {
    /// Environment steps taken up to the snapshot.
    pub fn steps_taken(&self) -> usize {
        self.steps_taken
    }

    /// Cost of the best state at the snapshot.
    pub fn best_cost(&self) -> f64 {
        self.best_cost
    }
}

/// Per-environment work counters (the shared cache keeps its own
/// global ones).
#[derive(Debug, Clone, Copy, Default)]
struct PipelineCounters {
    synth_runs: usize,
    cache_hits: usize,
    cache_misses: usize,
    sta: StaStats,
    lint: LintStats,
    synthesis_calls: usize,
    surrogate_screened: usize,
    surrogate_forced_evals: usize,
}

/// Long-lived state of the incremental miss path: the cached
/// elaboration (with per-column checkpoints and the arena mirror) and
/// the synthesis session (with the previous mapped connectivity and
/// STA baseline).
struct IncPipeline {
    mul: IncrementalMultiplier,
    synth: IncrementalSynthesis,
}

impl std::fmt::Debug for MulEnv {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "MulEnv({}b {}, {} steps, {} cached states)",
            self.config.bits,
            self.config.kind,
            self.steps_taken,
            self.cache.len()
        )
    }
}

impl MulEnv {
    /// Builds the environment, synthesizing the initial structure to
    /// derive delay targets and the reward baseline.
    ///
    /// # Errors
    ///
    /// Propagates tree, elaboration and synthesis errors.
    pub fn new(config: EnvConfig) -> Result<Self, RlMulError> {
        Self::with_cache(config, EvalCache::new())
    }

    /// Builds the environment on top of a shared evaluation cache, so
    /// parallel workers (and sequential method comparisons over the
    /// same design) never synthesize the same state twice.
    ///
    /// # Errors
    ///
    /// As [`MulEnv::new`].
    pub fn with_cache(config: EnvConfig, cache: EvalCache) -> Result<Self, RlMulError> {
        let initial = match config.initial {
            InitialStructure::Wallace => CompressorTree::wallace(config.bits, config.kind)?,
            InitialStructure::Dadda => CompressorTree::dadda(config.bits, config.kind)?,
        };
        let synthesizer = Synthesizer::nangate45();
        let mut counters = PipelineCounters::default();
        // Min-area synthesis of s_0 anchors the delay constraints,
        // routed through the shared cache (empty target list as the
        // context) so sibling environments reuse one anchor run.
        let anchor_opts = SynthesisOptions::default();
        let anchor_context = context_fingerprint(
            &[],
            anchor_opts.max_upsizes,
            [config.weights.area, config.weights.delay, config.weights.power],
        );
        let anchor_eval = Self::evaluate_cached(
            &cache,
            &synthesizer,
            None,
            &config.weights,
            config.kind,
            anchor_context,
            &initial,
            std::slice::from_ref(&anchor_opts),
            &mut counters,
            &TelemetrySink::disabled(),
            &TraceCtx::disabled(),
        )?
        .0;
        let anchor_delay = anchor_eval.reports[0].delay_ns;
        let delay_targets = if config.delay_targets.is_empty() {
            [0.7, 0.85, 1.0, 1.15].iter().map(|m| m * anchor_delay).collect()
        } else {
            config.delay_targets.clone()
        };
        let initial_stages = initial.stage_count()?;
        let stage_limit = match config.pruning {
            StagePruning::Auto => initial_stages + 1,
            StagePruning::Limit(l) => l,
            StagePruning::Off => usize::MAX,
        };
        let tensor_stages = if config.tensor_stages == 0 {
            (initial_stages + 2).next_power_of_two().max(8)
        } else {
            config.tensor_stages
        };
        let eval_context = context_fingerprint(
            &delay_targets,
            config.max_upsizes,
            [config.weights.area, config.weights.delay, config.weights.power],
        );
        let inc = match config.pipeline {
            PipelineMode::Incremental => Some(IncPipeline {
                mul: IncrementalMultiplier::new(&initial)?,
                synth: IncrementalSynthesis::nangate45(),
            }),
            PipelineMode::FullRebuild => None,
        };
        let surrogate = if config.surrogate.enabled {
            let volume = 2 * 2 * config.bits * tensor_stages;
            Some(Surrogate::new(config.surrogate.clone(), volume, &delay_targets, config.weights))
        } else {
            None
        };
        let mut env = MulEnv {
            config,
            synthesizer,
            current: initial.clone(),
            initial,
            inc,
            current_cost: 0.0,
            delay_targets,
            stage_limit,
            tensor_stages,
            cache,
            eval_context,
            pareto_points: Vec::new(),
            best: (f64::INFINITY, CompressorTree::wallace(2, PpgKind::And)?),
            steps_taken: 0,
            counters,
            sink: TelemetrySink::disabled(),
            trace: TraceCtx::disabled(),
            surrogate,
            scratch_mask: Vec::new(),
            scratch_dense: Vec::new(),
            watch: Vec::new(),
        };
        let eval = env.evaluate(&env.current.clone())?;
        env.current_cost = eval.cost;
        env.best = (eval.cost, env.current.clone());
        Ok(env)
    }

    /// The environment configuration.
    pub fn config(&self) -> &EnvConfig {
        &self.config
    }

    /// Routes this environment's per-phase telemetry (elaborate, lint,
    /// synthesis timings on every cache miss) into `sink`.
    pub fn set_telemetry(&mut self, sink: TelemetrySink) {
        self.sink = sink;
    }

    /// Routes this environment's per-job trace events (cache hits and
    /// misses, surrogate screening decisions, synthesis calls) into
    /// `trace`. Disabled by default; `rlmul serve` installs the job's
    /// [`TraceCtx`] before a run starts.
    pub fn set_trace(&mut self, trace: TraceCtx) {
        self.trace = trace;
    }

    /// Captures the mutable state of this environment at a step
    /// boundary. Together with the shared cache's
    /// [`EvalCache::export_entries`] this is everything a resumed run
    /// needs to continue bit-identically.
    pub fn snapshot(&mut self) -> EnvSnapshot {
        EnvSnapshot {
            current: self.current.clone(),
            current_cost: self.current_cost,
            best: self.best.1.clone(),
            best_cost: self.best.0,
            steps_taken: self.steps_taken,
            pareto_points: self.pareto_points.clone(),
            delay_targets: self.delay_targets.clone(),
            surrogate: self.surrogate.as_mut().map(Surrogate::snapshot),
            watch: self.watch.clone(),
        }
    }

    /// Restores the mutable state captured by [`MulEnv::snapshot`]
    /// into this (freshly constructed, same-configuration)
    /// environment. The evaluation-context fingerprint is recomputed
    /// from the restored delay targets so costs keep hitting the same
    /// cache entries as before the checkpoint.
    ///
    /// # Errors
    ///
    /// Rejects snapshots whose structure does not match this
    /// environment's operand width or partial-product kind.
    pub fn restore(&mut self, snap: &EnvSnapshot) -> Result<(), RlMulError> {
        if snap.current.bits() != self.config.bits
            || snap.current.profile().kind() != self.config.kind
        {
            return Err(RlMulError::InvalidConfig {
                what: format!(
                    "snapshot is a {}-bit {} design, environment expects {}-bit {}",
                    snap.current.bits(),
                    snap.current.profile().kind(),
                    self.config.bits,
                    self.config.kind
                ),
            });
        }
        self.current = snap.current.clone();
        self.current_cost = snap.current_cost;
        self.best = (snap.best_cost, snap.best.clone());
        self.steps_taken = snap.steps_taken;
        self.pareto_points = snap.pareto_points.clone();
        self.delay_targets = snap.delay_targets.clone();
        self.eval_context = context_fingerprint(
            &self.delay_targets,
            self.config.max_upsizes,
            [self.config.weights.area, self.config.weights.delay, self.config.weights.power],
        );
        if let (Some(s), Some(ss)) = (self.surrogate.as_mut(), snap.surrogate.as_ref()) {
            s.restore(ss)?;
        }
        self.watch = snap.watch.clone();
        Ok(())
    }

    /// The derived (or configured) synthesis delay targets.
    pub fn delay_targets(&self) -> &[f64] {
        &self.delay_targets
    }

    /// The current state.
    pub fn current(&self) -> &CompressorTree {
        &self.current
    }

    /// Cost of the current state.
    pub fn current_cost(&self) -> f64 {
        self.current_cost
    }

    /// Best (lowest-cost) state seen so far with its cost.
    pub fn best(&self) -> (&CompressorTree, f64) {
        (&self.best.1, self.best.0)
    }

    /// Size of the flattened action space (`8N`).
    pub fn action_space(&self) -> usize {
        self.current.action_space()
    }

    /// State-tensor shape `[1, 2, 2N, ST_pad]`.
    pub fn tensor_shape(&self) -> [usize; 4] {
        [1, 2, 2 * self.config.bits, self.tensor_stages]
    }

    /// Encodes a tree into the network input tensor (Algorithm 1
    /// assignment, zero-padded on the stage axis, scaled to ≈ unit
    /// range).
    ///
    /// # Errors
    ///
    /// Propagates assignment errors (unreachable from legal states).
    pub fn encode(&self, tree: &CompressorTree) -> Result<Tensor, RlMulError> {
        let mut dense = Vec::new();
        self.fill_encoding(tree, &mut dense)?;
        Ok(Tensor::from_vec(&self.tensor_shape(), dense))
    }

    /// Writes the flattened [`MulEnv::encode`] values into a
    /// caller-owned buffer (the per-candidate hot path of surrogate
    /// screening encodes every legal successor without allocating).
    ///
    /// # Errors
    ///
    /// Propagates assignment errors (unreachable from legal states).
    pub fn fill_encoding(
        &self,
        tree: &CompressorTree,
        out: &mut Vec<f32>,
    ) -> Result<(), RlMulError> {
        tree.assign_stages()?.to_dense_into(self.tensor_stages, out);
        for v in out.iter_mut() {
            *v *= 0.25;
        }
        Ok(())
    }

    /// Encodes the current state.
    ///
    /// # Errors
    ///
    /// Propagates assignment errors.
    pub fn encode_current(&self) -> Result<Tensor, RlMulError> {
        self.encode(&self.current)
    }

    /// Validity mask combining the structural mask (paper Eq. 6) with
    /// stage pruning (Section IV-C). If pruning would forbid every
    /// action, the unpruned mask is returned so the agent never
    /// deadlocks.
    pub fn action_mask(&self) -> Vec<bool> {
        let mut mask = Vec::new();
        self.action_mask_into(&mut mask);
        mask
    }

    /// [`MulEnv::action_mask`] writing into a caller-owned buffer, so
    /// per-step mask queries reuse one allocation.
    pub fn action_mask_into(&self, out: &mut Vec<bool>) {
        self.current.action_mask_into(out);
        if self.stage_limit == usize::MAX {
            return;
        }
        let ncols = self.current.matrix().num_columns();
        let mut any = false;
        for (idx, allowed) in out.iter_mut().enumerate() {
            if !*allowed {
                continue;
            }
            let action = Action::from_flat_index(idx, ncols).expect("mask-sized index");
            let successor =
                self.current.apply_action(action).expect("masked-in actions are applicable");
            let stages = successor.stage_count().unwrap_or(usize::MAX);
            if stages > self.stage_limit {
                *allowed = false;
            } else {
                any = true;
            }
        }
        if !any {
            // Pruning forbade everything; fall back to the structural
            // mask so the agent never deadlocks.
            self.current.action_mask_into(out);
        }
    }

    /// Resets to the initial structure, keeping the evaluation cache
    /// and Pareto archive.
    pub fn reset(&mut self) {
        self.current = self.initial.clone();
        let key = CacheKeyRef {
            counts: self.initial.matrix().counts(),
            kind: self.config.kind,
            context: self.eval_context,
        };
        self.current_cost = self.cache.peek(&key).map(|e| e.cost).unwrap_or(self.current_cost);
    }

    /// Applies the flattened action index, legalizes, synthesizes the
    /// successor and returns the reward.
    ///
    /// # Errors
    ///
    /// Returns an error for out-of-range or masked-out actions and
    /// propagates synthesis failures.
    pub fn step(&mut self, action_index: usize) -> Result<StepOutcome, RlMulError> {
        let obs = rlmul_obs::global();
        let _span = obs.span("env.step");
        let ncols = self.current.matrix().num_columns();
        let action = Action::from_flat_index(action_index, ncols)?;
        let next = self.current.apply_action(action)?;
        let (evaluation, screened) = if self.surrogate.is_some() {
            self.evaluate_step_gated(action_index, &next)?
        } else {
            (self.evaluate(&next)?, false)
        };
        let reward = self.current_cost - evaluation.cost;
        obs.counter("rlmul_env_steps_total", "Environment steps taken across all envs.").inc();
        obs.histogram("rlmul_env_step_reward_magnitude", "Absolute step reward (cost delta).")
            .observe(reward.abs());
        self.current = next;
        self.current_cost = evaluation.cost;
        self.steps_taken += 1;
        // Screened costs are predictions; the best-state record only
        // ever holds real synthesis results.
        if !screened && evaluation.cost < self.best.0 {
            self.best = (evaluation.cost, self.current.clone());
        }
        Ok(StepOutcome { reward, cost: evaluation.cost, evaluation })
    }

    /// Synthesizes `tree` under every delay target. The targets fan
    /// out over scoped threads inside the synthesizer, and results
    /// are cached by `(structure, kind, context)` in the shared
    /// [`EvalCache`] — a state synthesized by any worker sharing the
    /// cache is a hit here.
    ///
    /// # Errors
    ///
    /// Propagates elaboration and synthesis errors.
    pub fn evaluate(&mut self, tree: &CompressorTree) -> Result<Arc<Evaluation>, RlMulError> {
        let options: Vec<SynthesisOptions> = self
            .delay_targets
            .iter()
            .map(|&t| SynthesisOptions {
                target_delay_ns: Some(t),
                max_upsizes: self.config.max_upsizes,
            })
            .collect();
        let (eval, fresh) = Self::evaluate_cached(
            &self.cache,
            &self.synthesizer,
            self.inc.as_mut(),
            &self.config.weights,
            self.config.kind,
            self.eval_context,
            tree,
            &options,
            &mut self.counters,
            &self.sink,
            &self.trace,
        )?;
        if fresh {
            for r in &eval.reports {
                self.pareto_points.push((r.area_um2, r.delay_ns));
            }
        }
        if self.surrogate.is_some() {
            self.surrogate_ingest(tree, &eval);
        }
        Ok(eval)
    }

    /// Feeds one real (cache-backed) evaluation to the surrogate:
    /// resets the honesty counter, ingests the sample if this
    /// environment has not seen the state yet, and emits a
    /// `surrogate` telemetry event with the per-constraint MAE when a
    /// prediction-error probe was recorded.
    ///
    /// Ingestion is keyed on this environment's own evaluate stream
    /// (not on who synthesized the entry), so parallel workers
    /// sharing one cache train their surrogates deterministically:
    /// whether a sibling won the in-flight race changes hit/miss
    /// counters, never the bit-identical evaluation ingested here.
    fn surrogate_ingest(&mut self, tree: &CompressorTree, eval: &Evaluation) {
        let Some(mut s) = self.surrogate.take() else { return };
        s.note_real();
        let fp = state_fingerprint(tree.matrix().counts(), self.config.kind, self.eval_context);
        if s.wants(fp) {
            let mut dense = std::mem::take(&mut self.scratch_dense);
            if self.fill_encoding(tree, &mut dense).is_ok() {
                let recorded = s.observe(fp, &dense, eval);
                if recorded && self.sink.is_enabled() {
                    let mae = s.mae();
                    let n = mae.len().max(1) as f64;
                    // check: allow(trace-ctx) MAE aggregate; screening decisions are trace-correlated
                    let mut ev = Event::new("surrogate")
                        .with("observed", s.observed())
                        .with("area_mae", mae.iter().map(|m| m.0).sum::<f64>() / n)
                        .with("delay_mae", mae.iter().map(|m| m.1).sum::<f64>() / n);
                    for (i, &(a, d)) in mae.iter().enumerate() {
                        ev = ev
                            .with(format!("area_mae_{i}").as_str(), a)
                            .with(format!("delay_mae_{i}").as_str(), d);
                    }
                    // check: allow(trace-ctx) same MAE aggregate as above
                    self.sink.emit(ev);
                }
            }
            self.scratch_dense = dense;
        }
        self.surrogate = Some(s);
    }

    /// Top-k screening gate for step agents (DQN and A2C route every
    /// step through here when the surrogate is enabled). Scores all
    /// legal successors with one batched MLP forward and sends the
    /// chosen one to real synthesis only when it is cached (free),
    /// the model is cold, a forced full evaluation is due, or it
    /// ranks inside the predicted top-k. Returns the evaluation and
    /// whether it was screened (served from the surrogate).
    fn evaluate_step_gated(
        &mut self,
        action_index: usize,
        next: &CompressorTree,
    ) -> Result<(Arc<Evaluation>, bool), RlMulError> {
        let key = CacheKeyRef {
            counts: next.matrix().counts(),
            kind: self.config.kind,
            context: self.eval_context,
        };
        let cached = self.cache.peek(&key).is_some();
        let (warmed, forced, topk) = {
            let s = self.surrogate.as_ref().expect("gated path requires a surrogate");
            (s.is_warmed(), s.forced_due(), s.config().topk)
        };
        if cached || !warmed {
            return Ok((self.evaluate(next)?, false));
        }
        if forced {
            self.counters.surrogate_forced_evals += 1;
            if self.trace.is_enabled() {
                self.trace.emit("surrogate_forced", "gate=topk honesty eval due");
            }
            if let Some(s) = self.surrogate.as_mut() {
                s.note_forced();
            }
            return Ok((self.evaluate(next)?, false));
        }
        let mut s = self.surrogate.take().expect("checked above");
        let mut mask = std::mem::take(&mut self.scratch_mask);
        let mut dense = std::mem::take(&mut self.scratch_dense);
        let mut flat = s.take_flat();
        self.action_mask_into(&mut mask);
        flat.clear();
        let ncols = self.current.matrix().num_columns();
        let volume = 2 * 2 * self.config.bits * self.tensor_stages;
        let mut chosen_pos: Option<usize> = None;
        let mut n_cands = 0usize;
        let mut chosen_encode_failed = false;
        for (idx, &ok) in mask.iter().enumerate() {
            let is_chosen = idx == action_index;
            if !ok && !is_chosen {
                continue;
            }
            let encoded = if is_chosen {
                self.fill_encoding(next, &mut dense).is_ok()
            } else {
                match Action::from_flat_index(idx, ncols)
                    .ok()
                    .and_then(|a| self.current.apply_action(a).ok())
                {
                    Some(succ) => self.fill_encoding(&succ, &mut dense).is_ok(),
                    None => false,
                }
            };
            if !encoded {
                if is_chosen {
                    chosen_encode_failed = true;
                    break;
                }
                continue;
            }
            if is_chosen {
                chosen_pos = Some(n_cands);
            }
            flat.extend_from_slice(&dense);
            n_cands += 1;
        }
        let mut screened_eval = None;
        if !chosen_encode_failed {
            if let Some(pos) = chosen_pos {
                let costs = s.predict_costs(&flat, n_cands);
                let chosen_cost = costs[pos];
                // Stable rank: strictly better candidates, plus equal
                // candidates at an earlier index.
                let rank = costs
                    .iter()
                    .enumerate()
                    .filter(|&(i, &c)| c < chosen_cost || (c == chosen_cost && i < pos))
                    .count();
                if rank >= topk {
                    let x = &flat[pos * volume..(pos + 1) * volume];
                    let eval = s.predict_evaluation(x);
                    // Front guard: a state predicted to extend the
                    // Pareto front is worth a real synthesis even if
                    // its scalar cost ranks poorly — screening it
                    // would silently cap the run's hypervolume.
                    // Near-misses go on the verification watchlist.
                    let score = self.front_nearness(&eval);
                    let (slack, vtop) = (s.config().guard_slack, s.config().verify_top);
                    if score <= slack {
                        self.watch_screened(score, &eval, next, vtop);
                        screened_eval = Some(eval);
                    }
                }
            }
        }
        s.put_flat(flat);
        self.scratch_mask = mask;
        self.scratch_dense = dense;
        if let Some(eval) = screened_eval {
            s.note_screened();
            self.counters.surrogate_screened += 1;
            if self.trace.is_enabled() {
                self.trace.emit("surrogate_screened", "gate=topk");
            }
            self.surrogate = Some(s);
            return Ok((Arc::new(eval), true));
        }
        self.surrogate = Some(s);
        Ok((self.evaluate(next)?, false))
    }

    /// Threshold screening gate for single-proposal searches (SA
    /// proposes one random neighbor per step, so top-k ranking
    /// degenerates): the proposal goes to real synthesis when it is
    /// cached, the model is cold, or a forced full evaluation is due.
    /// Otherwise the surrogate answers when either criterion holds —
    /// the predicted cost is outside `sa_margin` of the best real
    /// cost (predicted-unpromising), or the predicted uphill delta
    /// from `current_cost` makes acceptance at `temperature` less
    /// likely than `sa_accept_floor` (a rejection the walk reaches
    /// under real and predicted costs alike). With the surrogate
    /// disabled this is exactly [`MulEnv::evaluate`].
    ///
    /// # Errors
    ///
    /// Propagates elaboration and synthesis errors.
    pub fn evaluate_gated(
        &mut self,
        tree: &CompressorTree,
        current_cost: f64,
        temperature: f64,
    ) -> Result<Arc<Evaluation>, RlMulError> {
        let Some(sref) = self.surrogate.as_ref() else {
            return self.evaluate(tree);
        };
        let key = CacheKeyRef {
            counts: tree.matrix().counts(),
            kind: self.config.kind,
            context: self.eval_context,
        };
        let cached = self.cache.peek(&key).is_some();
        let (warmed, forced, margin, floor) = (
            sref.is_warmed(),
            sref.forced_due(),
            sref.config().sa_margin,
            sref.config().sa_accept_floor,
        );
        if cached || !warmed {
            return self.evaluate(tree);
        }
        if forced {
            self.counters.surrogate_forced_evals += 1;
            if self.trace.is_enabled() {
                self.trace.emit("surrogate_forced", "gate=sa honesty eval due");
            }
            if let Some(s) = self.surrogate.as_mut() {
                s.note_forced();
            }
            return self.evaluate(tree);
        }
        let mut s = self.surrogate.take().expect("checked above");
        let mut dense = std::mem::take(&mut self.scratch_dense);
        let mut screened_eval = None;
        if self.fill_encoding(tree, &mut dense).is_ok() {
            let cost = s.predict_costs(&dense, 1)[0];
            let unpromising = cost > s.best_real_cost() * (1.0 + margin);
            // exp(-delta / T) < floor  <=>  delta > T * ln(1/floor).
            let certain_reject =
                cost - current_cost > temperature * (1.0 / floor.clamp(1e-12, 1.0)).ln();
            if unpromising || certain_reject {
                let eval = s.predict_evaluation(&dense);
                // Front guard, as in the top-k path: predicted
                // front-extending states always get a real run, and
                // near-misses go on the verification watchlist.
                let score = self.front_nearness(&eval);
                let (slack, vtop) = (s.config().guard_slack, s.config().verify_top);
                if score <= slack {
                    self.watch_screened(score, &eval, tree, vtop);
                    screened_eval = Some(eval);
                }
            }
        }
        self.scratch_dense = dense;
        if let Some(eval) = screened_eval {
            s.note_screened();
            self.counters.surrogate_screened += 1;
            if self.trace.is_enabled() {
                self.trace.emit("surrogate_screened", "gate=sa");
            }
            self.surrogate = Some(s);
            return Ok(Arc::new(eval));
        }
        self.surrogate = Some(s);
        self.evaluate(tree)
    }

    /// How close `eval`'s predicted per-constraint `(area, delay)`
    /// points come to extending the accumulated Pareto front: the
    /// smallest relative slack at which every predicted point is
    /// dominated by some front point. Negative means comfortably
    /// dominated, values above the configured `guard_slack` mean the
    /// state could grow the front's hypervolume (so the screening
    /// gates refuse to answer it from the surrogate), and anything in
    /// between is a near-miss worth remembering for the end-of-run
    /// verification sweep. `INFINITY` when the front is still empty.
    fn front_nearness(&self, eval: &Evaluation) -> f64 {
        self.points_nearness(eval.reports.iter().map(|r| (r.area_um2, r.delay_ns)))
    }

    /// [`MulEnv::front_nearness`] over raw `(area, delay)` points —
    /// also used to re-score watchlist predictions against the final
    /// front at sweep time.
    fn points_nearness(&self, points: impl Iterator<Item = (f64, f64)>) -> f64 {
        points
            .map(|(area, delay)| {
                self.pareto_points
                    .iter()
                    .map(|&(a, d)| (a / area).max(d / delay) - 1.0)
                    .fold(f64::INFINITY, f64::min)
            })
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Records a screened state on the verification watchlist, kept
    /// sorted by descending front nearness and bounded to a small
    /// multiple of the sweep size. Duplicate states keep their first
    /// (highest-information) entry; insertion order breaks score ties
    /// so the list is deterministic.
    fn watch_screened(
        &mut self,
        score: f64,
        eval: &Evaluation,
        tree: &CompressorTree,
        verify_top: usize,
    ) {
        if verify_top == 0 {
            return;
        }
        let cap = verify_top * 4;
        if self.watch.iter().any(|(_, _, t)| t == tree) {
            return;
        }
        let pos = self.watch.partition_point(|&(s, _, _)| s >= score);
        if pos >= cap {
            return;
        }
        let pred = eval.reports.iter().map(|r| (r.area_um2, r.delay_ns)).collect();
        self.watch.insert(pos, (score, pred, tree.clone()));
        self.watch.truncate(cap);
    }

    /// End-of-run verification sweep: re-scores every watched
    /// prediction against the *final* Pareto front (the front grows
    /// several-fold between an early screen and the end of a run, so
    /// screen-time scores go stale), then real-evaluates the states
    /// still predicted to extend it, best first, up to the configured
    /// `verify_top`. Fronts built with the surrogate on cannot
    /// silently miss a design the model mispredicted as dominated.
    /// Returns how many states were evaluated; a no-op without a
    /// surrogate.
    ///
    /// # Errors
    ///
    /// Propagates elaboration and synthesis errors.
    pub fn verify_screened(&mut self) -> Result<usize, RlMulError> {
        let Some(s) = self.surrogate.as_ref() else {
            return Ok(0);
        };
        let top = s.config().verify_top;
        let watch = std::mem::take(&mut self.watch);
        let mut rescored: Vec<(f64, usize)> = watch
            .iter()
            .enumerate()
            .map(|(i, (_, pred, _))| (self.points_nearness(pred.iter().copied()), i))
            .filter(|&(score, _)| score > 0.0)
            .collect();
        // Descending score; the stable original index breaks ties so
        // the sweep order is deterministic.
        rescored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
        let mut verified = 0;
        for &(_, i) in rescored.iter().take(top) {
            self.evaluate(&watch[i].2)?;
            verified += 1;
        }
        Ok(verified)
    }

    /// Cache-mediated synthesis shared by [`MulEnv::evaluate`] and
    /// the anchor run in [`MulEnv::with_cache`]. Returns the
    /// evaluation and whether this caller synthesized it (`false` for
    /// cache hits, including waits on another worker's in-flight
    /// run).
    ///
    /// When `inc` is provided (and the tree has the profile the
    /// incremental state was built for), the miss path re-elaborates
    /// only the changed columns, lints only the delta, and patches the
    /// previous mapped connectivity and STA baseline instead of
    /// rebuilding them; otherwise every miss runs the full pipeline.
    /// The cache lookup itself probes with a borrowed key, so hits
    /// never allocate.
    #[allow(clippy::too_many_arguments)]
    fn evaluate_cached(
        cache: &EvalCache,
        synthesizer: &Synthesizer,
        inc: Option<&mut IncPipeline>,
        weights: &CostWeights,
        kind: PpgKind,
        context: u64,
        tree: &CompressorTree,
        options: &[SynthesisOptions],
        counters: &mut PipelineCounters,
        sink: &TelemetrySink,
        trace: &TraceCtx,
    ) -> Result<(Arc<Evaluation>, bool), RlMulError> {
        let key = CacheKeyRef { counts: tree.matrix().counts(), kind, context };
        match cache.lookup_or_begin(&key) {
            Lookup::Hit(eval) => {
                counters.cache_hits += 1;
                if trace.is_enabled() {
                    trace.emit("cache_hit", &format!("context={context:016x}"));
                }
                Ok((eval, false))
            }
            Lookup::Miss(ticket) => {
                counters.cache_misses += 1;
                if trace.is_enabled() {
                    trace.emit("cache_miss", &format!("context={context:016x}"));
                }
                let obs = rlmul_obs::global();
                let _eval_span = obs.span("env.evaluate");
                // On error the ticket drops un-completed, releasing
                // any coalesced waiters to retry for themselves.
                let inc = inc.filter(|s| s.mul.tree().profile() == tree.profile());
                let mode = if inc.is_some() { "incremental" } else { "full" };
                // check: allow(wall-clock) phase timing for obs/telemetry stats only
                let t0 = Instant::now();
                let (t1, t2, reports) = match inc {
                    Some(state) => {
                        let delta_size = {
                            let _s = obs.span("elaborate");
                            state.mul.retarget(tree)?.size()
                        };
                        obs.histogram(
                            "rlmul_env_splice_gates",
                            "Gates touched per incremental retarget (delta size).",
                        )
                        .observe(delta_size as f64);
                        // check: allow(wall-clock) phase timing stats only
                        let t1 = Instant::now();
                        // Structural lint gate before every synthesis
                        // call — restricted to the touched gates/nets
                        // on the incremental path (port-shape rules
                        // still re-run in full; they are O(ports)).
                        let lint_report = {
                            let _s = obs.span("lint");
                            rlmul_rtl::lint_delta(state.mul.arena(), state.mul.last_delta())
                        };
                        counters.lint.record(&lint_report);
                        debug_assert_eq!(
                            lint_report.errors(),
                            0,
                            "delta lint gate failed before synthesis:\n{}",
                            lint_report.render()
                        );
                        // check: allow(wall-clock) phase timing stats only
                        let t2 = Instant::now();
                        let reports = {
                            let _s = obs.span("synth");
                            state.synth.run_many(state.mul.netlist(), options)?
                        };
                        (t1, t2, reports)
                    }
                    None => {
                        let netlist = {
                            let _s = obs.span("elaborate");
                            MultiplierNetlist::elaborate(tree)?.into_netlist()
                        };
                        // check: allow(wall-clock) phase timing stats only
                        let t1 = Instant::now();
                        // Structural lint gate before every synthesis
                        // call: counters always, hard stop on errors
                        // in debug builds (elaboration is validated,
                        // so an error here means an IR invariant was
                        // broken upstream).
                        let lint_report = {
                            let _s = obs.span("lint");
                            rlmul_rtl::lint(&netlist)
                        };
                        counters.lint.record(&lint_report);
                        debug_assert_eq!(
                            lint_report.errors(),
                            0,
                            "structural lint gate failed before synthesis:\n{}",
                            lint_report.render()
                        );
                        // check: allow(wall-clock) phase timing stats only
                        let t2 = Instant::now();
                        let reports = {
                            let _s = obs.span("synth");
                            synthesizer.run_many(&netlist, options)?
                        };
                        (t1, t2, reports)
                    }
                };
                // check: allow(wall-clock) phase timing stats only
                let t3 = Instant::now();
                obs.labeled_counter(
                    "rlmul_env_pipeline_total",
                    "Evaluation-pipeline cache misses by pipeline mode.",
                    &[("mode", mode)],
                )
                .inc();
                counters.synthesis_calls += 1;
                if trace.is_enabled() {
                    trace.emit("synth", &format!("targets={} mode={mode}", options.len()));
                }
                obs.counter(
                    "rlmul_synth_calls_total",
                    "Real synthesis pipeline invocations (cache misses that ran the synthesizer).",
                )
                .inc();
                counters.synth_runs += reports.len();
                for r in &reports {
                    counters.sta.merge(r.sta);
                }
                for (phase, from, to) in
                    [("elaborate", t0, t1), ("lint", t1, t2), ("synth", t2, t3)]
                {
                    obs.labeled_histogram(
                        "rlmul_env_phase_seconds",
                        "Wall time per evaluation-pipeline phase.",
                        &[("phase", phase)],
                    )
                    .observe((to - from).as_secs_f64());
                }
                if sink.is_enabled() {
                    // Phase timings mirror the trace-correlated
                    // cache_miss/synth events emitted above, so the
                    // telemetry-only lines below are escape-justified.
                    // check: allow(wall-clock) telemetry phase events, not state
                    let phase = |name: &str, from: Instant, to: Instant| {
                        Event::new("phase") // check: allow(trace-ctx) mirrors trace above
                            .with("name", name)
                            .with("secs", (to - from).as_secs_f64())
                    };
                    sink.emit(phase("elaborate", t0, t1)); // check: allow(trace-ctx) mirrors trace above
                    sink.emit(phase("lint", t1, t2)); // check: allow(trace-ctx) mirrors trace above
                    sink.emit(phase("synth", t2, t3)); // check: allow(trace-ctx) mirrors trace above
                }
                let cost = weights.cost(&reports);
                let eval = Arc::new(Evaluation { reports, cost });
                ticket.complete(eval.clone());
                Ok((eval, true))
            }
        }
    }

    /// Every `(area µm², delay ns)` point synthesized so far — the
    /// raw material of the paper's Pareto-front figures.
    pub fn pareto_points(&self) -> &[(f64, f64)] {
        &self.pareto_points
    }

    /// Evaluation-pipeline statistics for this environment.
    pub fn stats(&self) -> EnvStats {
        EnvStats {
            steps: self.steps_taken,
            distinct_states: self.cache.len(),
            synth_runs: self.counters.synth_runs,
            cache_hits: self.counters.cache_hits,
            cache_misses: self.counters.cache_misses,
            sta: self.counters.sta,
            lint: self.counters.lint,
            synthesis_calls: self.counters.synthesis_calls,
            surrogate_screened: self.counters.surrogate_screened,
            surrogate_forced_evals: self.counters.surrogate_forced_evals,
        }
    }

    /// Handle to the evaluation cache this environment uses; clone it
    /// into sibling environments to share synthesized states.
    pub fn cache(&self) -> &EvalCache {
        &self.cache
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlmul_ct::{Action, CompressorTree};

    fn env8() -> MulEnv {
        MulEnv::new(EnvConfig::new(8, PpgKind::And)).unwrap()
    }

    #[test]
    fn four_delay_targets_are_derived() {
        let env = env8();
        assert_eq!(env.delay_targets().len(), 4);
        assert!(env.delay_targets().windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn step_returns_cost_difference_as_reward() {
        let mut env = env8();
        let c0 = env.current_cost();
        let a = env.action_mask().iter().position(|&ok| ok).unwrap();
        let out = env.step(a).unwrap();
        assert!((out.reward - (c0 - out.cost)).abs() < 1e-9);
        assert!(env.current().is_legal());
    }

    #[test]
    fn cache_avoids_resynthesis() {
        let mut env = env8();
        let a = env.action_mask().iter().position(|&ok| ok).unwrap();
        env.step(a).unwrap();
        let before = env.stats();
        assert!(before.distinct_states >= 2);
        // Re-evaluating the current state hits the cache.
        let tree = env.current().clone();
        env.evaluate(&tree).unwrap();
        let after = env.stats();
        assert_eq!(before.synth_runs, after.synth_runs);
        assert_eq!(after.cache_hits, before.cache_hits + 1);
    }

    #[test]
    fn incremental_pipeline_matches_full_rebuild_costs() {
        // Two independent caches, identical action walks: the
        // incremental miss path must produce bit-identical costs and
        // rewards to the from-scratch oracle pipeline.
        let inc_cfg = EnvConfig::new(8, PpgKind::And);
        assert_eq!(inc_cfg.pipeline, PipelineMode::Incremental);
        let mut full_cfg = inc_cfg.clone();
        full_cfg.pipeline = PipelineMode::FullRebuild;
        let mut inc_env = MulEnv::new(inc_cfg).unwrap();
        let mut full_env = MulEnv::new(full_cfg).unwrap();
        assert_eq!(inc_env.delay_targets(), full_env.delay_targets());
        assert_eq!(inc_env.current_cost().to_bits(), full_env.current_cost().to_bits());
        let mut seed = 0x9e3779b97f4a7c15u64;
        for _ in 0..4 {
            let mask = inc_env.action_mask();
            assert_eq!(mask, full_env.action_mask());
            let legal: Vec<usize> =
                mask.iter().enumerate().filter(|(_, &ok)| ok).map(|(i, _)| i).collect();
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let a = legal[(seed >> 33) as usize % legal.len()];
            let oi = inc_env.step(a).unwrap();
            let of = full_env.step(a).unwrap();
            assert_eq!(oi.cost.to_bits(), of.cost.to_bits());
            assert_eq!(oi.reward.to_bits(), of.reward.to_bits());
            for (ri, rf) in oi.evaluation.reports.iter().zip(&of.evaluation.reports) {
                assert_eq!(ri.area_um2.to_bits(), rf.area_um2.to_bits());
                assert_eq!(ri.delay_ns.to_bits(), rf.delay_ns.to_bits());
                assert_eq!(ri.power_mw.to_bits(), rf.power_mw.to_bits());
                assert_eq!(ri.met_target, rf.met_target);
            }
        }
        // The incremental env did real incremental work, not fallbacks.
        assert!(inc_env.stats().cache_misses >= 4);
    }

    #[test]
    fn shared_cache_dedups_across_envs() {
        let cache = crate::cache::EvalCache::new();
        let e1 = MulEnv::with_cache(EnvConfig::new(8, PpgKind::And), cache.clone()).unwrap();
        let e2 = MulEnv::with_cache(EnvConfig::new(8, PpgKind::And), cache.clone()).unwrap();
        // The first env synthesizes the anchor and the initial state;
        // the second env finds both in the shared cache.
        assert!(e1.stats().synth_runs > 0);
        assert_eq!(e2.stats().synth_runs, 0, "sibling env re-synthesized shared states");
        assert_eq!(e2.stats().cache_hits, 2);
        assert_eq!(e1.stats().distinct_states, e2.stats().distinct_states);
    }

    #[test]
    fn stage_pruning_masks_deepening_actions() {
        let env = env8();
        let pruned: usize = env.action_mask().iter().filter(|&&ok| ok).count();
        let unpruned: usize = env.current().action_mask().iter().filter(|&&ok| ok).count();
        assert!(pruned <= unpruned);
        assert!(pruned > 0);
    }

    #[test]
    fn encode_has_stable_shape() {
        let env = env8();
        let t = env.encode_current().unwrap();
        assert_eq!(t.shape(), env.tensor_shape());
        assert!(t.data().iter().all(|v| (0.0..=8.0).contains(v)));
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut env = env8();
        let initial = env.current().clone();
        let a = env.action_mask().iter().position(|&ok| ok).unwrap();
        env.step(a).unwrap();
        assert_ne!(env.current(), &initial);
        env.reset();
        assert_eq!(env.current(), &initial);
    }

    #[test]
    fn mac_environment_steps() {
        let mut env = MulEnv::new(EnvConfig::new(4, PpgKind::MacAnd)).unwrap();
        let a = env.action_mask().iter().position(|&ok| ok).unwrap();
        let out = env.step(a).unwrap();
        assert!(out.cost.is_finite());
        assert!(env.current().profile().kind().is_mac());
    }

    #[test]
    fn explicit_stage_limit_is_respected() {
        let mut cfg = EnvConfig::new(8, PpgKind::And);
        let baseline_stages =
            CompressorTree::wallace(8, PpgKind::And).unwrap().stage_count().unwrap();
        cfg.pruning = StagePruning::Limit(baseline_stages);
        let env = MulEnv::new(cfg).unwrap();
        // Every unmasked action keeps the successor at or below the limit.
        let ncols = env.current().matrix().num_columns();
        for (idx, &ok) in env.action_mask().iter().enumerate() {
            if !ok {
                continue;
            }
            let a = Action::from_flat_index(idx, ncols).unwrap();
            let next = env.current().apply_action(a).unwrap();
            assert!(next.stage_count().unwrap() <= baseline_stages);
        }
    }

    #[test]
    fn invalid_action_index_is_an_error() {
        let mut env = env8();
        assert!(env.step(99_999).is_err());
        let masked = env.action_mask().iter().position(|&ok| !ok).unwrap();
        assert!(env.step(masked).is_err());
    }

    #[test]
    fn pareto_archive_grows_with_new_states() {
        let mut env = env8();
        let before = env.pareto_points().len();
        let a = env.action_mask().iter().position(|&ok| ok).unwrap();
        env.step(a).unwrap();
        assert!(env.pareto_points().len() > before);
    }

    #[test]
    fn explicit_delay_targets_are_used_verbatim() {
        let mut cfg = EnvConfig::new(4, PpgKind::And);
        cfg.delay_targets = vec![0.9, 1.1];
        let env = MulEnv::new(cfg).unwrap();
        assert_eq!(env.delay_targets(), &[0.9, 1.1]);
    }

    #[test]
    fn best_tracks_lowest_cost() {
        let mut env = env8();
        for _ in 0..5 {
            let a = env.action_mask().iter().position(|&ok| ok).unwrap();
            env.step(a).unwrap();
        }
        let (_, best_cost) = env.best();
        assert!(best_cost <= env.current_cost() + 1e-12);
    }
}
