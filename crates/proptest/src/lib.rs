//! Offline drop-in for the subset of `proptest` this workspace uses.
//!
//! The build environment has no network access, so the real
//! `proptest` crate cannot be fetched. This shim keeps the same
//! surface syntax — the [`proptest!`] macro with
//! `#![proptest_config(..)]`, `pat in strategy` bindings,
//! [`prop_assert!`]/[`prop_assert_eq!`], [`prop_oneof!`], [`Just`],
//! [`any`], range and tuple strategies, and
//! `prop::collection::vec` — over a deterministic random-sampling
//! runner.
//!
//! Differences from upstream: cases are generated from a fixed
//! per-test seed (fully deterministic runs, no `PROPTEST_` env
//! handling) and failing inputs are reported but not shrunk. For this
//! repository's invariants-style properties that trade-off is fine;
//! determinism is an advantage in CI.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Runner configuration (`cases` is the only knob this shim honours).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The property was violated.
    Fail(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail<S: Into<String>>(msg: S) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// A value generator. Unlike upstream there is no value tree: a
/// strategy draws a plain value from the deterministic RNG.
pub trait Strategy {
    /// Generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// A strategy always yielding a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

impl<T: SampleUniform + PartialOrd + Copy> Strategy for Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: SampleUniform + PartialOrd + Copy> Strategy for RangeInclusive<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);

/// Types with a canonical whole-domain strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut StdRng) -> u128 {
        rng.gen::<u128>()
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.gen::<u64>() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut StdRng) -> f32 {
        rng.gen::<f32>()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> f64 {
        rng.gen::<f64>()
    }
}

/// Strategy over the full domain of `T`.
#[derive(Debug, Clone, Default)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Uniform choice between boxed alternatives ([`prop_oneof!`]).
pub struct Union<T> {
    /// The alternatives (picked uniformly).
    pub options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        assert!(!self.options.is_empty(), "prop_oneof! needs at least one option");
        let pick = rng.gen_range(0..self.options.len());
        self.options[pick].generate(rng)
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Accepted size arguments for [`vec()`]: an exact length, a
    /// half-open range, or an inclusive range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max_inclusive: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max_inclusive: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { min: *r.start(), max_inclusive: *r.end() }
        }
    }

    /// Strategy yielding vectors of `elem` draws.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Vectors with lengths drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..=self.size.max_inclusive);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Runs `case` for every generated input; panics on the first
/// failure, reporting the case number (deterministic, so a failing
/// case is reproducible by rerunning the test).
pub fn run_cases<F>(config: ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
{
    let name_hash = name
        .bytes()
        .fold(0xcbf2_9ce4_8422_2325u64, |h, b| (h ^ b as u64).wrapping_mul(0x1000_0000_01b3));
    for i in 0..config.cases {
        let mut rng =
            StdRng::seed_from_u64(name_hash ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        if let Err(TestCaseError::Fail(msg)) = case(&mut rng) {
            panic!("property '{name}' failed at case {i}/{}: {msg}", config.cases);
        }
    }
}

/// Defines property tests: `proptest! { #![proptest_config(cfg)]
/// #[test] fn prop(x in strat, ..) { .. } .. }`.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::run_cases(config, stringify!($name), |__proptest_rng| {
                    $(let $pat = $crate::Strategy::generate(&($strat), __proptest_rng);)+
                    (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })()
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($rest)*
        }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` != `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: `{:?}` == `{:?}`", l, r);
    }};
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let options: ::std::vec::Vec<::std::boxed::Box<dyn $crate::Strategy<Value = _>>> =
            vec![$(::std::boxed::Box::new($strat)),+];
        $crate::Union { options }
    }};
}

/// One-stop imports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..10, y in -2i64..=2, f in 0.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2..=2).contains(&y));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_size(v in prop::collection::vec(0usize..5, 1..4)) {
            prop_assert!((1..4).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn oneof_picks_only_listed(k in prop_oneof![Just(1u32), Just(7u32)]) {
            prop_assert!(k == 1 || k == 7);
        }

        #[test]
        fn tuples_compose(pair in (0usize..4, 10usize..14)) {
            prop_assert!(pair.0 < 4 && (10..14).contains(&pair.1));
        }
    }

    #[test]
    fn failing_property_panics_with_case_number() {
        let result = std::panic::catch_unwind(|| {
            crate::run_cases(ProptestConfig::with_cases(4), "always_fails", |_| {
                Err(TestCaseError::fail("nope"))
            });
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("always_fails") && msg.contains("nope"), "{msg}");
    }
}
